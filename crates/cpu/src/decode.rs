//! RV32IM instruction decoder.

use crate::instr::{AluOp, BranchOp, CsrOp, CsrSrc, Instr, LoadOp, MulDivOp, StoreOp};
use std::error::Error;
use std::fmt;

/// A word that does not decode to a supported RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable instruction word.
    pub word: u32,
    /// PC it was fetched from (0 when unknown).
    pub pc: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal instruction {:#010x} at pc {:#010x}",
            self.word, self.pc
        )
    }
}

impl Error for DecodeError {}

#[inline]
fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1F) as u8
}
#[inline]
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1F) as u8
}
#[inline]
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1F) as u8
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}

/// Sign-extended I-type immediate.
#[inline]
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

/// Sign-extended S-type immediate.
#[inline]
fn imm_s(w: u32) -> i32 {
    (((w & 0xFE00_0000) as i32) >> 20) | ((w >> 7) & 0x1F) as i32
}

/// Sign-extended B-type immediate.
#[inline]
fn imm_b(w: u32) -> i32 {
    (((w & 0x8000_0000) as i32) >> 19)
        | (((w >> 7) & 0x1) << 11) as i32
        | (((w >> 25) & 0x3F) << 5) as i32
        | (((w >> 8) & 0xF) << 1) as i32
}

/// Sign-extended J-type immediate.
#[inline]
fn imm_j(w: u32) -> i32 {
    (((w & 0x8000_0000) as i32) >> 11)
        | ((w & 0x000F_F000) as i32)
        | (((w >> 20) & 0x1) << 11) as i32
        | (((w >> 21) & 0x3FF) << 1) as i32
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for words that are not valid, supported RV32IM
/// encodings (the core raises an illegal-instruction condition on them).
pub fn decode(word: u32, pc: u32) -> Result<Instr, DecodeError> {
    let illegal = || DecodeError { word, pc };
    let opcode = word & 0x7F;
    match opcode {
        0x37 => Ok(Instr::Lui {
            rd: rd(word),
            imm: word & 0xFFFF_F000,
        }),
        0x17 => Ok(Instr::Auipc {
            rd: rd(word),
            imm: word & 0xFFFF_F000,
        }),
        0x6F => Ok(Instr::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        0x67 if funct3(word) == 0 => Ok(Instr::Jalr {
            rd: rd(word),
            rs1: rs1(word),
            offset: imm_i(word),
        }),
        0x63 => {
            let op = match funct3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return Err(illegal()),
            };
            Ok(Instr::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            })
        }
        0x03 => {
            let op = match funct3(word) {
                0b000 => LoadOp::Byte,
                0b001 => LoadOp::Half,
                0b010 => LoadOp::Word,
                0b100 => LoadOp::ByteU,
                0b101 => LoadOp::HalfU,
                _ => return Err(illegal()),
            };
            Ok(Instr::Load {
                op,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0x23 => {
            let op = match funct3(word) {
                0b000 => StoreOp::Byte,
                0b001 => StoreOp::Half,
                0b010 => StoreOp::Word,
                _ => return Err(illegal()),
            };
            Ok(Instr::Store {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_s(word),
            })
        }
        0x13 => {
            let f3 = funct3(word);
            let shamt = (word >> 20) & 0x1F;
            let op = match f3 {
                0b000 => AluOp::Add,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                0b001 if funct7(word) == 0 => AluOp::Sll,
                0b101 if funct7(word) == 0 => AluOp::Srl,
                0b101 if funct7(word) == 0b0100000 => AluOp::Sra,
                _ => return Err(illegal()),
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => shamt as i32,
                _ => imm_i(word),
            };
            Ok(Instr::AluImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            })
        }
        0x33 => {
            let f3 = funct3(word);
            let f7 = funct7(word);
            if f7 == 0b0000001 {
                let op = match f3 {
                    0b000 => MulDivOp::Mul,
                    0b001 => MulDivOp::Mulh,
                    0b010 => MulDivOp::Mulhsu,
                    0b011 => MulDivOp::Mulhu,
                    0b100 => MulDivOp::Div,
                    0b101 => MulDivOp::Divu,
                    0b110 => MulDivOp::Rem,
                    0b111 => MulDivOp::Remu,
                    _ => unreachable!("funct3 is 3 bits"),
                };
                return Ok(Instr::MulDiv {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                });
            }
            let op = match (f3, f7) {
                (0b000, 0b0000000) => AluOp::Add,
                (0b000, 0b0100000) => AluOp::Sub,
                (0b001, 0b0000000) => AluOp::Sll,
                (0b010, 0b0000000) => AluOp::Slt,
                (0b011, 0b0000000) => AluOp::Sltu,
                (0b100, 0b0000000) => AluOp::Xor,
                (0b101, 0b0000000) => AluOp::Srl,
                (0b101, 0b0100000) => AluOp::Sra,
                (0b110, 0b0000000) => AluOp::Or,
                (0b111, 0b0000000) => AluOp::And,
                _ => return Err(illegal()),
            };
            Ok(Instr::Alu {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        0x0F => Ok(Instr::Fence),
        0x73 => {
            let f3 = funct3(word);
            if f3 == 0 {
                return match word {
                    0x0000_0073 => Ok(Instr::Ecall),
                    0x0010_0073 => Ok(Instr::Ebreak),
                    0x3020_0073 => Ok(Instr::Mret),
                    0x1050_0073 => Ok(Instr::Wfi),
                    _ => Err(illegal()),
                };
            }
            let csr = (word >> 20) as u16;
            let op = match f3 & 0b011 {
                0b01 => CsrOp::ReadWrite,
                0b10 => CsrOp::ReadSet,
                0b11 => CsrOp::ReadClear,
                _ => return Err(illegal()),
            };
            let src = if f3 & 0b100 != 0 {
                CsrSrc::Imm(rs1(word))
            } else {
                CsrSrc::Reg(rs1(word))
            };
            Ok(Instr::Csr {
                op,
                rd: rd(word),
                src,
                csr,
            })
        }
        _ => Err(illegal()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn decode_alu_imm() {
        assert_eq!(
            decode(asm::addi(5, 6, -12), 0).unwrap(),
            Instr::AluImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 6,
                imm: -12
            }
        );
        assert_eq!(
            decode(asm::srai(1, 2, 7), 0).unwrap(),
            Instr::AluImm {
                op: AluOp::Sra,
                rd: 1,
                rs1: 2,
                imm: 7
            }
        );
    }

    #[test]
    fn decode_alu_reg_and_muldiv() {
        assert_eq!(
            decode(asm::sub(3, 4, 5), 0).unwrap(),
            Instr::Alu {
                op: AluOp::Sub,
                rd: 3,
                rs1: 4,
                rs2: 5
            }
        );
        assert_eq!(
            decode(asm::mul(1, 2, 3), 0).unwrap(),
            Instr::MulDiv {
                op: MulDivOp::Mul,
                rd: 1,
                rs1: 2,
                rs2: 3
            }
        );
        assert_eq!(
            decode(asm::divu(1, 2, 3), 0).unwrap(),
            Instr::MulDiv {
                op: MulDivOp::Divu,
                rd: 1,
                rs1: 2,
                rs2: 3
            }
        );
    }

    #[test]
    fn decode_branches_with_negative_offsets() {
        assert_eq!(
            decode(asm::beq(1, 2, -8), 0).unwrap(),
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: 1,
                rs2: 2,
                offset: -8
            }
        );
        assert_eq!(
            decode(asm::bgeu(7, 8, 4094), 0).unwrap(),
            Instr::Branch {
                op: BranchOp::Geu,
                rs1: 7,
                rs2: 8,
                offset: 4094
            }
        );
    }

    #[test]
    fn decode_loads_stores() {
        assert_eq!(
            decode(asm::lw(10, 11, 0x7FF), 0).unwrap(),
            Instr::Load {
                op: LoadOp::Word,
                rd: 10,
                rs1: 11,
                offset: 0x7FF
            }
        );
        assert_eq!(
            decode(asm::sw(12, 13, -2048), 0).unwrap(),
            Instr::Store {
                op: StoreOp::Word,
                rs1: 12,
                rs2: 13,
                offset: -2048
            }
        );
        assert_eq!(
            decode(asm::lbu(1, 2, 3), 0).unwrap(),
            Instr::Load {
                op: LoadOp::ByteU,
                rd: 1,
                rs1: 2,
                offset: 3
            }
        );
    }

    #[test]
    fn decode_jumps() {
        assert_eq!(
            decode(asm::jal(1, -1024), 0).unwrap(),
            Instr::Jal { rd: 1, offset: -1024 }
        );
        assert_eq!(
            decode(asm::jalr(0, 1, 16), 0).unwrap(),
            Instr::Jalr {
                rd: 0,
                rs1: 1,
                offset: 16
            }
        );
    }

    #[test]
    fn decode_upper_immediates() {
        assert_eq!(
            decode(asm::lui(4, 0xDEADB000), 0).unwrap(),
            Instr::Lui {
                rd: 4,
                imm: 0xDEADB000
            }
        );
        assert_eq!(
            decode(asm::auipc(4, 0x1000), 0).unwrap(),
            Instr::Auipc { rd: 4, imm: 0x1000 }
        );
    }

    #[test]
    fn decode_system_instructions() {
        assert_eq!(decode(asm::wfi(), 0).unwrap(), Instr::Wfi);
        assert_eq!(decode(asm::mret(), 0).unwrap(), Instr::Mret);
        assert_eq!(decode(asm::ecall(), 0).unwrap(), Instr::Ecall);
        assert_eq!(decode(asm::ebreak(), 0).unwrap(), Instr::Ebreak);
        assert_eq!(decode(asm::fence(), 0).unwrap(), Instr::Fence);
    }

    #[test]
    fn decode_csr_forms() {
        assert_eq!(
            decode(asm::csrrw(1, 0x305, 2), 0).unwrap(),
            Instr::Csr {
                op: CsrOp::ReadWrite,
                rd: 1,
                src: CsrSrc::Reg(2),
                csr: 0x305
            }
        );
        assert_eq!(
            decode(asm::csrrsi(0, 0x300, 8), 0).unwrap(),
            Instr::Csr {
                op: CsrOp::ReadSet,
                rd: 0,
                src: CsrSrc::Imm(8),
                csr: 0x300
            }
        );
    }

    #[test]
    fn illegal_words_rejected() {
        for w in [0u32, 0xFFFF_FFFF, 0x0000_007F, 0xC000_1073 & !0x3000] {
            if let Ok(i) = decode(w, 0x80) {
                panic!("word {w:#x} unexpectedly decoded to {i}");
            }
        }
        let err = decode(0, 0x80).unwrap_err();
        assert_eq!(err.pc, 0x80);
        assert!(err.to_string().contains("illegal instruction"));
    }
}
