//! # pels-cpu — an Ibex-class RV32IM instruction-set simulator
//!
//! The paper's baseline handles peripheral linking with "a traditional
//! interrupt-based mechanism that relies on the main processing core"
//! (Section IV-B) — the core being lowRISC **Ibex**, a 2-stage, in-order
//! RV32IMC microcontroller CPU. This crate provides a cycle-stepped
//! instruction-set simulator with Ibex-like timing so the baseline's
//! 16-cycle interrupt-handling latency and its memory-system switching
//! activity are *measured from executed code*, not assumed:
//!
//! * RV32I base + M extension + **C extension** (16-bit compressed
//!   instructions, decoded by expansion like Ibex's decompressor) +
//!   Zicsr, `wfi` and `mret`;
//! * per-instruction cycle costs following the Ibex documentation
//!   ([`timing`]): 1-cycle ALU, 2-cycle loads/stores (plus bus wait
//!   states), 3-cycle taken branches, 2-cycle jumps, multi-cycle divide;
//! * machine-mode interrupts with Ibex's vectored dispatch and fast
//!   interrupt lines, and WFI sleep with wake-up cost;
//! * every instruction fetch is charged to the SRAM it executes from —
//!   the activity asymmetry at the heart of the paper's Figure 5.
//!
//! The CPU talks to the platform through the [`CpuBus`] trait: instruction
//! fetches and L2 data hit a fixed-latency path, peripheral accesses go
//! through the APB fabric and stall the pipeline for as long as
//! arbitration and wait states dictate.
//!
//! ## Example
//!
//! ```
//! use pels_cpu::{asm, Cpu, SimpleBus};
//!
//! // x1 = 5; x2 = 7; x3 = x1 + x2
//! let program = [
//!     asm::addi(1, 0, 5),
//!     asm::addi(2, 0, 7),
//!     asm::add(3, 1, 2),
//!     asm::wfi(),
//! ];
//! let mut bus = SimpleBus::new(4096);
//! bus.load(0, &program);
//! let mut cpu = Cpu::new(0);
//! while !cpu.is_sleeping() {
//!     cpu.tick(&mut bus, 0);
//! }
//! assert_eq!(cpu.reg(3), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod bus;
pub mod compressed;
pub mod core;
pub mod csr;
pub mod decode;
pub mod instr;
pub mod regs;
pub mod timing;

pub use bus::{CpuBus, DataReq, DataResult, SimpleBus};
pub use compressed::{decode_compressed, is_compressed};
pub use core::{Cpu, CpuState, HaltCause, SuperblockStats};
pub use csr::CsrFile;
pub use decode::{decode, DecodeError};
pub use instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
pub use regs::RegFile;
