//! Decoded instruction forms.

use std::fmt;

/// ALU operation (shared by register-register and register-immediate
/// forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`); the register-register subtract is
    /// [`AluOp::Sub`].
    Add,
    /// Subtraction (`sub`).
    Sub,
    /// Set-less-than signed.
    Slt,
    /// Set-less-than unsigned.
    Sltu,
    /// Bitwise XOR.
    Xor,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Logical left shift.
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
}

/// Branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt`
    Lt,
    /// `bge`
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

/// Load width/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb`
    Byte,
    /// `lh`
    Half,
    /// `lw`
    Word,
    /// `lbu`
    ByteU,
    /// `lhu`
    HalfU,
}

/// Store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb`
    Byte,
    /// `sh`
    Half,
    /// `sw`
    Word,
}

/// M-extension operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// `mul`
    Mul,
    /// `mulh`
    Mulh,
    /// `mulhsu`
    Mulhsu,
    /// `mulhu`
    Mulhu,
    /// `div`
    Div,
    /// `divu`
    Divu,
    /// `rem`
    Rem,
    /// `remu`
    Remu,
}

/// CSR access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `csrrw`/`csrrwi`
    ReadWrite,
    /// `csrrs`/`csrrsi`
    ReadSet,
    /// `csrrc`/`csrrci`
    ReadClear,
}

/// Source operand of a CSR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form: operand comes from `rs1`.
    Reg(u8),
    /// Immediate form: 5-bit zero-extended immediate.
    Imm(u8),
}

/// A decoded RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the RISC-V spec directly
pub enum Instr {
    Lui { rd: u8, imm: u32 },
    Auipc { rd: u8, imm: u32 },
    Jal { rd: u8, offset: i32 },
    Jalr { rd: u8, rs1: u8, offset: i32 },
    Branch { op: BranchOp, rs1: u8, rs2: u8, offset: i32 },
    Load { op: LoadOp, rd: u8, rs1: u8, offset: i32 },
    Store { op: StoreOp, rs1: u8, rs2: u8, offset: i32 },
    AluImm { op: AluOp, rd: u8, rs1: u8, imm: i32 },
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    MulDiv { op: MulDivOp, rd: u8, rs1: u8, rs2: u8 },
    Csr { op: CsrOp, rd: u8, src: CsrSrc, csr: u16 },
    Fence,
    Ecall,
    Ebreak,
    Mret,
    Wfi,
}

impl Instr {
    /// Whether the instruction may redirect the PC.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. } | Instr::Mret
        )
    }

    /// Whether the instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Lui { rd, imm } => write!(f, "lui x{rd}, {:#x}", imm >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc x{rd}, {:#x}", imm >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal x{rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr x{rd}, {offset}(x{rs1})"),
            Instr::Branch { op, rs1, rs2, offset } => {
                write!(f, "b{op:?} x{rs1}, x{rs2}, {offset}")
            }
            Instr::Load { op, rd, rs1, offset } => {
                write!(f, "l{op:?} x{rd}, {offset}(x{rs1})")
            }
            Instr::Store { op, rs1, rs2, offset } => {
                write!(f, "s{op:?} x{rs2}, {offset}(x{rs1})")
            }
            Instr::AluImm { op, rd, rs1, imm } => write!(f, "{op:?}i x{rd}, x{rs1}, {imm}"),
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} x{rd}, x{rs1}, x{rs2}"),
            Instr::MulDiv { op, rd, rs1, rs2 } => write!(f, "{op:?} x{rd}, x{rs1}, x{rs2}"),
            Instr::Csr { op, rd, src, csr } => {
                write!(f, "{op:?} x{rd}, {csr:#x}, {src:?}")
            }
            Instr::Fence => f.write_str("fence"),
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
            Instr::Mret => f.write_str("mret"),
            Instr::Wfi => f.write_str("wfi"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flow_classification() {
        assert!(Instr::Jal { rd: 0, offset: 8 }.is_control_flow());
        assert!(Instr::Mret.is_control_flow());
        assert!(!Instr::Fence.is_control_flow());
        assert!(!Instr::Lui { rd: 1, imm: 0 }.is_control_flow());
    }

    #[test]
    fn mem_classification() {
        assert!(Instr::Load {
            op: LoadOp::Word,
            rd: 1,
            rs1: 2,
            offset: 0
        }
        .is_mem());
        assert!(!Instr::Wfi.is_mem());
    }

    #[test]
    fn display_is_nonempty_for_all_forms() {
        let samples = [
            Instr::Lui { rd: 1, imm: 0x1000 },
            Instr::Jal { rd: 1, offset: -4 },
            Instr::Wfi,
            Instr::Csr {
                op: CsrOp::ReadWrite,
                rd: 0,
                src: CsrSrc::Imm(3),
                csr: 0x300,
            },
        ];
        for s in samples {
            assert!(!s.to_string().is_empty());
        }
    }
}
