//! The integer register file.

use std::fmt;

/// The 32 RV32 integer registers; `x0` is hardwired to zero.
///
/// ```
/// use pels_cpu::RegFile;
/// let mut r = RegFile::new();
/// r.set(5, 99);
/// assert_eq!(r.get(5), 99);
/// r.set(0, 1); // writes to x0 are discarded
/// assert_eq!(r.get(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    x: [u32; 32],
    reads: u64,
    writes: u64,
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        RegFile {
            x: [0; 32],
            reads: 0,
            writes: 0,
        }
    }

    /// Reads register `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 32`.
    pub fn get(&self, r: u8) -> u32 {
        self.x[r as usize]
    }

    /// Reads register `r`, counting a register-file port access.
    pub fn read(&mut self, r: u8) -> u32 {
        self.reads += 1;
        self.x[r as usize]
    }

    /// Writes register `r` (ignored for `x0`), counting a port access.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 32`.
    pub fn set(&mut self, r: u8, value: u32) {
        self.writes += 1;
        if r != 0 {
            self.x[r as usize] = value;
        }
    }

    /// Accounts `reads` extra port reads and `writes` extra port writes
    /// without touching register state. Fused superblock ops collapse
    /// several architectural register accesses into one host-level
    /// operation; the elided accesses still happened architecturally, so
    /// their port activity must be billed.
    pub fn count_ports(&mut self, reads: u64, writes: u64) {
        self.reads += reads;
        self.writes += writes;
    }

    /// Port reads since construction.
    pub fn port_reads(&self) -> u64 {
        self.reads
    }

    /// Port writes since construction.
    pub fn port_writes(&self) -> u64 {
        self.writes
    }

    /// Takes and clears both port counters.
    pub fn take_port_counts(&mut self) -> (u64, u64) {
        let out = (self.reads, self.writes);
        self.reads = 0;
        self.writes = 0;
        out
    }
}

impl fmt::Display for RegFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.x.iter().enumerate() {
            writeln!(f, "x{i:<2} = {v:#010x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut r = RegFile::new();
        r.set(0, 0xFFFF_FFFF);
        assert_eq!(r.get(0), 0);
    }

    #[test]
    fn all_other_registers_hold_values() {
        let mut r = RegFile::new();
        for i in 1..32u8 {
            r.set(i, u32::from(i) * 3);
        }
        for i in 1..32u8 {
            assert_eq!(r.get(i), u32::from(i) * 3);
        }
    }

    #[test]
    fn port_counters_track_accesses() {
        let mut r = RegFile::new();
        let _ = r.read(1);
        let _ = r.read(2);
        r.set(3, 1);
        assert_eq!(r.take_port_counts(), (2, 1));
        assert_eq!(r.take_port_counts(), (0, 0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_register_panics() {
        let r = RegFile::new();
        let _ = r.get(32);
    }
}
