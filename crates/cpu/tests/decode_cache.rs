//! Decoded-instruction cache correctness.
//!
//! The cache is a host-side accelerator only: every test here runs the
//! same program with the cache enabled and disabled and demands
//! bit-identical architectural state, cycle counts and fetch traffic.
//! Self-modifying code is the adversarial case — a cached decode of an
//! instruction the program has since overwritten must never execute.

use pels_cpu::{asm, Cpu, HaltCause, SimpleBus};

fn pack16(lo: u16, hi: u16) -> u32 {
    u32::from(lo) | (u32::from(hi) << 16)
}

fn fresh(program: &[u32], cache: bool) -> (Cpu, SimpleBus) {
    let mut bus = SimpleBus::new(64 * 1024);
    bus.load(0, program);
    let mut cpu = Cpu::new(0);
    cpu.set_decode_cache_enabled(cache);
    (cpu, bus)
}

/// Executes a target instruction, patches it through a store, issues
/// `fence.i`, and re-executes it. Layout (word addresses):
///
/// ```text
/// 0x00 li32 x1, 0x60          target address
/// 0x08 li32 x2, <patched>     addi x5, x0, 99
/// 0x10 jal  0x60              first execution of the original target
/// 0x14 bne  x6, x0, 0x28      second return → done
/// 0x18 addi x6, x0, 1
/// 0x1C sw   x2, 0(x1)         patch the target
/// 0x20 fence.i
/// 0x24 jal  0x60              re-execute the (patched) target
/// 0x28 ecall
/// 0x60 addi x5, x0, 1         the target (overwritten with x5 ← 99)
/// 0x64 jal  0x14              back to the return site
/// ```
fn self_modifying_program(with_fence: bool) -> Vec<u32> {
    let mut p = vec![0u32; 0x68 / 4];
    let mut at = |addr: usize, words: &[u32]| {
        for (i, &w) in words.iter().enumerate() {
            p[addr / 4 + i] = w;
        }
    };
    at(0x00, &asm::li32(1, 0x60));
    at(0x08, &asm::li32(2, asm::addi(5, 0, 99)));
    at(0x10, &[asm::jal(0, 0x60 - 0x10)]);
    at(0x14, &[asm::bne(6, 0, 0x28 - 0x14)]);
    at(0x18, &[asm::addi(6, 0, 1)]);
    at(0x1C, &[asm::sw(1, 2, 0)]);
    at(
        0x20,
        &[if with_fence {
            asm::fence_i()
        } else {
            asm::addi(0, 0, 0) // nop placeholder: same length, no fence
        }],
    );
    at(0x24, &[asm::jal(0, 0x60 - 0x24)]);
    at(0x28, &[asm::ecall()]);
    at(0x60, &[asm::addi(5, 0, 1)]);
    at(0x64, &[asm::jal(0, 0x14 - 0x64)]);
    p
}

#[test]
fn self_modifying_code_with_fence_i_executes_patched_instruction() {
    let p = self_modifying_program(true);
    for cache in [true, false] {
        let (mut cpu, mut bus) = fresh(&p, cache);
        cpu.run(&mut bus, 0, 200);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall), "cache={cache}");
        assert_eq!(cpu.reg(5), 99, "patched instruction ran (cache={cache})");
    }
}

#[test]
fn self_modifying_code_is_safe_even_without_fence_i() {
    // Raw-bits re-verification on every hit means a stale decode can
    // never replay, fence or not — the fence is belt-and-braces, not a
    // correctness requirement of the model.
    let p = self_modifying_program(false);
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 200);
    assert_eq!(cpu.reg(5), 99);
}

#[test]
fn self_modifying_run_is_cycle_identical_with_cache_on_and_off() {
    let p = self_modifying_program(true);
    let (mut on, mut bus_on) = fresh(&p, true);
    on.run(&mut bus_on, 0, 200);
    let (mut off, mut bus_off) = fresh(&p, false);
    off.run(&mut bus_off, 0, 200);
    assert_eq!(on.cycles(), off.cycles());
    assert_eq!(on.retired(), off.retired());
    assert_eq!(bus_on.fetches, bus_off.fetches, "fetch traffic identical");
    for r in 0..32 {
        assert_eq!(on.reg(r), off.reg(r), "x{r}");
    }
    let (_, misses) = on.decode_cache_stats();
    assert!(misses > 0, "the run populated the cache");
    let (off_hits, off_misses) = off.decode_cache_stats();
    assert_eq!((off_hits, off_misses), (0, 0), "disabled cache stays cold");
}

#[test]
fn compressed_and_straddling_loop_identical_with_cache_on_and_off() {
    // A loop mixing a compressed parcel, a 32-bit instruction straddling
    // the word boundary (second fetch), a realigning c.nop and a
    // backward branch — the prefetch-buffer accounting cases. Ten
    // iterations give the cache plenty of hits.
    let addi6 = asm::addi(6, 6, 1);
    let p = [
        // 0x0: c.addi x5,1 | 0x2: addi x6,x6,1 (straddles into word 1)
        pack16(0x0285, (addi6 & 0xFFFF) as u16),
        // 0x6: c.nop
        pack16((addi6 >> 16) as u16, 0x0001),
        asm::addi(7, 7, 1),   // 0x8
        asm::bne(7, 8, -0xC), // 0xC: loop while x7 != x8
        asm::ecall(),         // 0x10
    ];
    let run = |cache: bool| {
        let (mut cpu, mut bus) = fresh(&p, cache);
        // The hit-rate assertion below is about the decode cache, which
        // only sees single-stepped instructions — block-mode execution
        // bypasses it (superblock coverage lives in the tests further
        // down).
        cpu.set_superblocks_enabled(false);
        cpu.set_reg(8, 10); // loop bound
        cpu.run(&mut bus, 0, 1_000);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall));
        assert_eq!((cpu.reg(5), cpu.reg(6), cpu.reg(7)), (10, 10, 10));
        let stats = cpu.decode_cache_stats();
        (cpu.cycles(), cpu.retired(), bus.fetches, stats)
    };
    let (cycles_on, retired_on, fetches_on, (hits, misses)) = run(true);
    let (cycles_off, retired_off, fetches_off, _) = run(false);
    assert_eq!(cycles_on, cycles_off, "per-instruction timing identical");
    assert_eq!(retired_on, retired_off);
    assert_eq!(
        fetches_on, fetches_off,
        "fetch count (incl. straddling second fetch) identical"
    );
    assert!(hits > misses, "loop body hits after the first iteration");
}

/// Lockstep differential: the same program advanced in ragged cycle
/// budgets with superblocks on and off must agree on every observable
/// at every budget boundary — including boundaries that land mid-block
/// and mid-stall.
#[test]
fn superblock_execution_matches_single_step_at_every_budget_boundary() {
    // A loop mixing a chainable ALU run, a store/load pair (block
    // breakers), and a backward branch (block closer).
    let p = [
        asm::addi(5, 5, 1),      // 0x00
        asm::addi(6, 6, 2),      // 0x04
        asm::xor(7, 5, 6),       // 0x08
        asm::add(7, 7, 5),       // 0x0C
        asm::sw(0, 7, 0x100),    // 0x10
        asm::lw(9, 0, 0x100),    // 0x14
        asm::addi(10, 10, 1),    // 0x18
        asm::bne(10, 8, -0x1C),  // 0x1C
        asm::ecall(),            // 0x20
    ];
    let (mut on, mut bus_on) = fresh(&p, true);
    let (mut off, mut bus_off) = fresh(&p, true);
    off.set_superblocks_enabled(false);
    on.set_reg(8, 25);
    off.set_reg(8, 25);
    let budgets = [1u64, 2, 3, 5, 7, 1, 4, 32, 2, 9, 64, 1, 1, 3, 128];
    'outer: loop {
        for &k in &budgets {
            on.run(&mut bus_on, 0, k);
            off.run(&mut bus_off, 0, k);
            assert_eq!(on.cycles(), off.cycles(), "cycles at budget {k}");
            assert_eq!(on.retired(), off.retired(), "retired at budget {k}");
            assert_eq!(on.pc(), off.pc(), "pc at budget {k}");
            assert_eq!(on.halt_cause(), off.halt_cause(), "halt at budget {k}");
            assert_eq!(bus_on.fetches, bus_off.fetches, "fetches at budget {k}");
            for r in 0..32 {
                assert_eq!(on.reg(r), off.reg(r), "x{r} at budget {k}");
            }
            if on.halt_cause().is_some() {
                break 'outer;
            }
        }
    }
    assert_eq!(on.halt_cause(), Some(HaltCause::Ecall));
    assert!(
        on.superblock_stats().block_runs > 0,
        "the fast side actually exercised block execution"
    );
    assert_eq!(off.superblock_stats().block_runs, 0, "single-step stays cold");
}

/// Patches the *middle* of a sealed superblock through a store. Layout
/// (word addresses):
///
/// ```text
/// 0x00 li32 x1, 0x68          patch address (mid-block)
/// 0x08 li32 x2, <patched>     addi x5, x0, 99
/// 0x10 jal  0x60              first execution seals the block
/// 0x14 bne  x6, x0, 0x28      second return → done
/// 0x18 addi x6, x0, 1
/// 0x1C sw   x2, 0(x1)         patch the block's third step
/// 0x20 fence.i | nop
/// 0x24 jal  0x60              re-execute the (patched) block
/// 0x28 ecall
/// 0x60 addi x5, x5, 1         ┐
/// 0x64 addi x5, x5, 2         │ the sealed block
/// 0x68 addi x5, x5, 4         │ (overwritten with x5 ← 99)
/// 0x6C jal  0x14              ┘
/// ```
fn block_patch_program(with_fence: bool) -> Vec<u32> {
    let mut p = vec![0u32; 0x70 / 4];
    let mut at = |addr: usize, words: &[u32]| {
        for (i, &w) in words.iter().enumerate() {
            p[addr / 4 + i] = w;
        }
    };
    at(0x00, &asm::li32(1, 0x68));
    at(0x08, &asm::li32(2, asm::addi(5, 0, 99)));
    at(0x10, &[asm::jal(0, 0x60 - 0x10)]);
    at(0x14, &[asm::bne(6, 0, 0x28 - 0x14)]);
    at(0x18, &[asm::addi(6, 0, 1)]);
    at(0x1C, &[asm::sw(1, 2, 0)]);
    at(
        0x20,
        &[if with_fence {
            asm::fence_i()
        } else {
            asm::addi(0, 0, 0)
        }],
    );
    at(0x24, &[asm::jal(0, 0x60 - 0x24)]);
    at(0x28, &[asm::ecall()]);
    at(0x60, &[asm::addi(5, 5, 1)]);
    at(0x64, &[asm::addi(5, 5, 2)]);
    at(0x68, &[asm::addi(5, 5, 4)]);
    at(0x6C, &[asm::jal(0, 0x14 - 0x6C)]);
    p
}

#[test]
fn self_modifying_code_across_block_boundary_with_fence_i() {
    let p = block_patch_program(true);
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 300);
    assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall));
    assert_eq!(cpu.reg(5), 99, "patched mid-block instruction ran");
    assert_eq!(
        cpu.superblock_stats().verify_aborts,
        0,
        "fence.i flushed the block, so no stale entry survived to abort"
    );
}

#[test]
fn self_modifying_code_across_block_boundary_without_fence_i() {
    // No fence: the stale sealed block is only caught by the per-step
    // raw-bits re-verify, which must abort the block rather than replay
    // the overwritten decode.
    let p = block_patch_program(false);
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 300);
    assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall));
    assert_eq!(cpu.reg(5), 99, "patched mid-block instruction ran");
    assert!(
        cpu.superblock_stats().verify_aborts >= 1,
        "the stale block entry was caught by re-verify"
    );
}

#[test]
fn block_patch_retires_identical_streams_in_both_modes() {
    for with_fence in [true, false] {
        let p = block_patch_program(with_fence);
        let (mut on, mut bus_on) = fresh(&p, true);
        on.run(&mut bus_on, 0, 300);
        let (mut off, mut bus_off) = fresh(&p, true);
        off.set_superblocks_enabled(false);
        off.run(&mut bus_off, 0, 300);
        let ctx = format!("fence={with_fence}");
        assert_eq!(on.cycles(), off.cycles(), "{ctx}: cycles");
        assert_eq!(on.retired(), off.retired(), "{ctx}: retired");
        assert_eq!(bus_on.fetches, bus_off.fetches, "{ctx}: fetch traffic");
        for r in 0..32 {
            assert_eq!(on.reg(r), off.reg(r), "{ctx}: x{r}");
        }
        assert_eq!(on.halt_cause(), off.halt_cause(), "{ctx}: halt cause");
    }
}

#[test]
fn disabling_superblocks_flushes_and_resets_stats() {
    let p = [
        asm::addi(1, 0, 7),
        asm::addi(2, 1, 1),
        asm::addi(3, 2, 1),
        asm::jal(0, -0xC),
    ];
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 100);
    assert!(cpu.superblocks_enabled());
    assert!(cpu.superblock_stats().block_runs > 0);
    cpu.set_superblocks_enabled(false);
    assert!(!cpu.superblocks_enabled());
    assert_eq!(cpu.superblock_stats(), pels_cpu::SuperblockStats::default());
}

#[test]
fn disabling_flushes_and_resets_stats() {
    let p = [asm::addi(1, 0, 7), asm::addi(2, 1, 1), asm::ecall()];
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 50);
    assert!(cpu.decode_cache_enabled());
    let (_, misses) = cpu.decode_cache_stats();
    assert!(misses > 0);
    cpu.set_decode_cache_enabled(false);
    assert!(!cpu.decode_cache_enabled());
    assert_eq!(cpu.decode_cache_stats(), (0, 0));
}

/// Three-way lockstep: fused superblocks, unfused superblocks and
/// single-stepping advanced in ragged cycle budgets must agree on every
/// observable at every budget boundary — including boundaries that land
/// on a fused pair's head (the one-cycle-left fallback) and mid-stall
/// inside a `div`.
#[test]
fn fused_execution_matches_unfused_and_single_step_at_every_budget() {
    // Dense in fusable patterns: a lui+addi pair, a same-rd ALU-imm
    // chain, a compare-and-branch pair, plus mul/div stall cases.
    let p = [
        asm::lui(5, 0x1000),    // 0x00 ┐ LuiAddi pair
        asm::addi(5, 5, 37),    // 0x04 ┘
        asm::addi(6, 6, 3),     // 0x08 ┐ AluImmPair (same rd)
        asm::addi(6, 6, 5),     // 0x0C ┘
        asm::xor(7, 5, 6),      // 0x10
        asm::mul(9, 6, 7),      // 0x14
        asm::div(11, 9, 6),     // 0x18: a 37-cycle step inside the block
        asm::addi(10, 10, 1),   // 0x1C
        asm::slt(12, 10, 8),    // 0x20 ┐ CmpBranch pair
        asm::bne(12, 0, -0x24), // 0x24 ┘ loop while x10 < x8
        asm::ecall(),           // 0x28
    ];
    let (mut fused, mut bus_fused) = fresh(&p, true);
    let (mut unfused, mut bus_unfused) = fresh(&p, true);
    unfused.set_fusion_enabled(false);
    let (mut single, mut bus_single) = fresh(&p, true);
    single.set_superblocks_enabled(false);
    for cpu in [&mut fused, &mut unfused, &mut single] {
        cpu.set_reg(8, 21);
    }
    let budgets = [1u64, 2, 3, 5, 7, 1, 4, 32, 2, 9, 64, 1, 1, 3, 128];
    'outer: loop {
        for &k in &budgets {
            fused.run(&mut bus_fused, 0, k);
            unfused.run(&mut bus_unfused, 0, k);
            single.run(&mut bus_single, 0, k);
            for (name, cpu, bus) in [
                ("unfused", &unfused, &bus_unfused),
                ("single", &single, &bus_single),
            ] {
                assert_eq!(fused.cycles(), cpu.cycles(), "{name}: cycles at {k}");
                assert_eq!(fused.retired(), cpu.retired(), "{name}: retired at {k}");
                assert_eq!(fused.pc(), cpu.pc(), "{name}: pc at {k}");
                assert_eq!(fused.halt_cause(), cpu.halt_cause(), "{name}: halt at {k}");
                assert_eq!(bus_fused.fetches, bus.fetches, "{name}: fetches at {k}");
                for r in 0..32 {
                    assert_eq!(fused.reg(r), cpu.reg(r), "{name}: x{r} at {k}");
                }
            }
            if fused.halt_cause().is_some() {
                break 'outer;
            }
        }
    }
    assert_eq!(fused.halt_cause(), Some(HaltCause::Ecall));
    let s = fused.superblock_stats();
    assert!(s.fused_pairs > 0, "the workload exercised pair fusion: {s:?}");
    assert!(s.fused_ops > s.fused_pairs, "single fused ops ran too: {s:?}");
    assert_eq!(
        unfused.superblock_stats().fused_ops,
        0,
        "the unfused tier never touches the fused program"
    );
}

/// Patches the *second half* of a fused lui+addi pair through a store,
/// with no `fence.i`. Layout (word addresses):
///
/// ```text
/// 0x00 li32 x1, 0x64          patch address (the pair's second half)
/// 0x08 li32 x2, <patched>     addi x5, x5, 99
/// 0x10 jal  0x60              first execution seals + fuses the block
/// 0x14 bne  x6, x0, 0x28      second return → done
/// 0x18 addi x6, x0, 1
/// 0x1C sw   x2, 0(x1)         patch the pair's second half
/// 0x20 nop
/// 0x24 jal  0x60              re-execute the (patched) block
/// 0x28 ecall
/// 0x60 lui  x5, 0x1000        ┐ the fused pair
/// 0x64 addi x5, x5, 7         ┘ (overwritten with x5 ← x5 + 99)
/// 0x68 jal  0x14
/// ```
///
/// The fused entry must retire the still-valid head generically (the
/// architectural `lui` executes), abort on the stale second half, and
/// hand the patched instruction to the generic frontend — bit-identical
/// to unfused and single-stepped execution. The patched instruction
/// accumulates into `x5`, so the final value proves the head executed
/// exactly once on the aborting run: 0x1000 (the re-run `lui`) + 99.
fn pair_patch_program() -> Vec<u32> {
    let mut p = vec![0u32; 0x6C / 4];
    let mut at = |addr: usize, words: &[u32]| {
        for (i, &w) in words.iter().enumerate() {
            p[addr / 4 + i] = w;
        }
    };
    at(0x00, &asm::li32(1, 0x64));
    at(0x08, &asm::li32(2, asm::addi(5, 5, 99)));
    at(0x10, &[asm::jal(0, 0x60 - 0x10)]);
    at(0x14, &[asm::bne(6, 0, 0x28 - 0x14)]);
    at(0x18, &[asm::addi(6, 0, 1)]);
    at(0x1C, &[asm::sw(1, 2, 0)]);
    at(0x20, &[asm::nop()]);
    at(0x24, &[asm::jal(0, 0x60 - 0x24)]);
    at(0x28, &[asm::ecall()]);
    at(0x60, &[asm::lui(5, 0x1000)]);
    at(0x64, &[asm::addi(5, 5, 7)]);
    at(0x68, &[asm::jal(0, 0x14 - 0x68)]);
    p
}

#[test]
fn self_modifying_code_over_a_fused_pair_aborts_bit_exactly() {
    let p = pair_patch_program();
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 300);
    assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall));
    assert_eq!(
        cpu.reg(5),
        0x1000 + 99,
        "the pair's head retired exactly once, then the patched half ran"
    );
    assert!(
        cpu.superblock_stats().verify_aborts >= 1,
        "the stale pair half was caught by re-verify"
    );
}

#[test]
fn pair_patch_retires_identical_streams_across_all_tiers() {
    let p = pair_patch_program();
    let (mut fused, mut bus_fused) = fresh(&p, true);
    fused.run(&mut bus_fused, 0, 300);
    let (mut unfused, mut bus_unfused) = fresh(&p, true);
    unfused.set_fusion_enabled(false);
    unfused.run(&mut bus_unfused, 0, 300);
    let (mut single, mut bus_single) = fresh(&p, true);
    single.set_superblocks_enabled(false);
    single.run(&mut bus_single, 0, 300);
    for (name, cpu, bus) in [
        ("unfused", &unfused, &bus_unfused),
        ("single", &single, &bus_single),
    ] {
        assert_eq!(fused.cycles(), cpu.cycles(), "{name}: cycles");
        assert_eq!(fused.retired(), cpu.retired(), "{name}: retired");
        assert_eq!(bus_fused.fetches, bus.fetches, "{name}: fetch traffic");
        assert_eq!(fused.halt_cause(), cpu.halt_cause(), "{name}: halt cause");
        for r in 0..32 {
            assert_eq!(fused.reg(r), cpu.reg(r), "{name}: x{r}");
        }
    }
}

#[test]
fn fusion_toggle_switches_tiers_without_flushing_blocks() {
    let p = [
        asm::addi(1, 0, 7),
        asm::addi(2, 2, 1),
        asm::addi(3, 2, 1),
        asm::jal(0, -0xC),
    ];
    let (mut cpu, mut bus) = fresh(&p, true);
    assert!(cpu.fusion_enabled());
    cpu.run(&mut bus, 0, 100);
    let warm = cpu.superblock_stats();
    assert!(warm.fused_ops > 0, "default tier is fused: {warm:?}");
    cpu.set_fusion_enabled(false);
    assert!(!cpu.fusion_enabled());
    cpu.run(&mut bus, 0, 100);
    let cold = cpu.superblock_stats();
    assert!(cold.block_runs > warm.block_runs, "blocks still run unfused");
    assert_eq!(cold.fused_ops, warm.fused_ops, "fused counters frozen");
}
