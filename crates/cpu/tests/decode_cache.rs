//! Decoded-instruction cache correctness.
//!
//! The cache is a host-side accelerator only: every test here runs the
//! same program with the cache enabled and disabled and demands
//! bit-identical architectural state, cycle counts and fetch traffic.
//! Self-modifying code is the adversarial case — a cached decode of an
//! instruction the program has since overwritten must never execute.

use pels_cpu::{asm, Cpu, HaltCause, SimpleBus};

fn pack16(lo: u16, hi: u16) -> u32 {
    u32::from(lo) | (u32::from(hi) << 16)
}

fn fresh(program: &[u32], cache: bool) -> (Cpu, SimpleBus) {
    let mut bus = SimpleBus::new(64 * 1024);
    bus.load(0, program);
    let mut cpu = Cpu::new(0);
    cpu.set_decode_cache_enabled(cache);
    (cpu, bus)
}

/// Executes a target instruction, patches it through a store, issues
/// `fence.i`, and re-executes it. Layout (word addresses):
///
/// ```text
/// 0x00 li32 x1, 0x60          target address
/// 0x08 li32 x2, <patched>     addi x5, x0, 99
/// 0x10 jal  0x60              first execution of the original target
/// 0x14 bne  x6, x0, 0x28      second return → done
/// 0x18 addi x6, x0, 1
/// 0x1C sw   x2, 0(x1)         patch the target
/// 0x20 fence.i
/// 0x24 jal  0x60              re-execute the (patched) target
/// 0x28 ecall
/// 0x60 addi x5, x0, 1         the target (overwritten with x5 ← 99)
/// 0x64 jal  0x14              back to the return site
/// ```
fn self_modifying_program(with_fence: bool) -> Vec<u32> {
    let mut p = vec![0u32; 0x68 / 4];
    let mut at = |addr: usize, words: &[u32]| {
        for (i, &w) in words.iter().enumerate() {
            p[addr / 4 + i] = w;
        }
    };
    at(0x00, &asm::li32(1, 0x60));
    at(0x08, &asm::li32(2, asm::addi(5, 0, 99)));
    at(0x10, &[asm::jal(0, 0x60 - 0x10)]);
    at(0x14, &[asm::bne(6, 0, 0x28 - 0x14)]);
    at(0x18, &[asm::addi(6, 0, 1)]);
    at(0x1C, &[asm::sw(1, 2, 0)]);
    at(
        0x20,
        &[if with_fence {
            asm::fence_i()
        } else {
            asm::addi(0, 0, 0) // nop placeholder: same length, no fence
        }],
    );
    at(0x24, &[asm::jal(0, 0x60 - 0x24)]);
    at(0x28, &[asm::ecall()]);
    at(0x60, &[asm::addi(5, 0, 1)]);
    at(0x64, &[asm::jal(0, 0x14 - 0x64)]);
    p
}

#[test]
fn self_modifying_code_with_fence_i_executes_patched_instruction() {
    let p = self_modifying_program(true);
    for cache in [true, false] {
        let (mut cpu, mut bus) = fresh(&p, cache);
        cpu.run(&mut bus, 0, 200);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall), "cache={cache}");
        assert_eq!(cpu.reg(5), 99, "patched instruction ran (cache={cache})");
    }
}

#[test]
fn self_modifying_code_is_safe_even_without_fence_i() {
    // Raw-bits re-verification on every hit means a stale decode can
    // never replay, fence or not — the fence is belt-and-braces, not a
    // correctness requirement of the model.
    let p = self_modifying_program(false);
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 200);
    assert_eq!(cpu.reg(5), 99);
}

#[test]
fn self_modifying_run_is_cycle_identical_with_cache_on_and_off() {
    let p = self_modifying_program(true);
    let (mut on, mut bus_on) = fresh(&p, true);
    on.run(&mut bus_on, 0, 200);
    let (mut off, mut bus_off) = fresh(&p, false);
    off.run(&mut bus_off, 0, 200);
    assert_eq!(on.cycles(), off.cycles());
    assert_eq!(on.retired(), off.retired());
    assert_eq!(bus_on.fetches, bus_off.fetches, "fetch traffic identical");
    for r in 0..32 {
        assert_eq!(on.reg(r), off.reg(r), "x{r}");
    }
    let (_, misses) = on.decode_cache_stats();
    assert!(misses > 0, "the run populated the cache");
    let (off_hits, off_misses) = off.decode_cache_stats();
    assert_eq!((off_hits, off_misses), (0, 0), "disabled cache stays cold");
}

#[test]
fn compressed_and_straddling_loop_identical_with_cache_on_and_off() {
    // A loop mixing a compressed parcel, a 32-bit instruction straddling
    // the word boundary (second fetch), a realigning c.nop and a
    // backward branch — the prefetch-buffer accounting cases. Ten
    // iterations give the cache plenty of hits.
    let addi6 = asm::addi(6, 6, 1);
    let p = [
        // 0x0: c.addi x5,1 | 0x2: addi x6,x6,1 (straddles into word 1)
        pack16(0x0285, (addi6 & 0xFFFF) as u16),
        // 0x6: c.nop
        pack16((addi6 >> 16) as u16, 0x0001),
        asm::addi(7, 7, 1),   // 0x8
        asm::bne(7, 8, -0xC), // 0xC: loop while x7 != x8
        asm::ecall(),         // 0x10
    ];
    let run = |cache: bool| {
        let (mut cpu, mut bus) = fresh(&p, cache);
        cpu.set_reg(8, 10); // loop bound
        cpu.run(&mut bus, 0, 1_000);
        assert_eq!(cpu.halt_cause(), Some(HaltCause::Ecall));
        assert_eq!((cpu.reg(5), cpu.reg(6), cpu.reg(7)), (10, 10, 10));
        let stats = cpu.decode_cache_stats();
        (cpu.cycles(), cpu.retired(), bus.fetches, stats)
    };
    let (cycles_on, retired_on, fetches_on, (hits, misses)) = run(true);
    let (cycles_off, retired_off, fetches_off, _) = run(false);
    assert_eq!(cycles_on, cycles_off, "per-instruction timing identical");
    assert_eq!(retired_on, retired_off);
    assert_eq!(
        fetches_on, fetches_off,
        "fetch count (incl. straddling second fetch) identical"
    );
    assert!(hits > misses, "loop body hits after the first iteration");
}

#[test]
fn disabling_flushes_and_resets_stats() {
    let p = [asm::addi(1, 0, 7), asm::addi(2, 1, 1), asm::ecall()];
    let (mut cpu, mut bus) = fresh(&p, true);
    cpu.run(&mut bus, 0, 50);
    assert!(cpu.decode_cache_enabled());
    let (_, misses) = cpu.decode_cache_stats();
    assert!(misses > 0);
    cpu.set_decode_cache_enabled(false);
    assert!(!cpu.decode_cache_enabled());
    assert_eq!(cpu.decode_cache_stats(), (0, 0));
}
