//! Bench: the design-choice ablations of DESIGN.md.
//!
//! Times the SCM-vs-shared-fetch, trigger-FIFO, arbitration and topology
//! studies (their *results* are asserted in the `pels-bench` unit tests).

use pels_bench::ablations;
use pels_bench::harness::Bench;

fn main() {
    let bench = Bench::from_args("ablations").sample_size(10);
    bench.run("scm_vs_shared_fetch", ablations::scm_vs_shared_fetch);
    bench.run("fifo_depth_sweep", ablations::fifo_depth_sweep);
    bench.run("arbiter_contention", ablations::arbiter_contention);
    bench.run("topology_contention", ablations::topology_contention);
}
