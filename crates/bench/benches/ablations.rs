//! Criterion bench: the design-choice ablations of DESIGN.md.
//!
//! Times the SCM-vs-shared-fetch, trigger-FIFO, arbitration and topology
//! studies (their *results* are asserted in the `pels-bench` unit tests).

use criterion::{criterion_group, criterion_main, Criterion};
use pels_bench::ablations;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("scm_vs_shared_fetch", |b| {
        b.iter(ablations::scm_vs_shared_fetch)
    });
    g.bench_function("fifo_depth_sweep", |b| b.iter(ablations::fifo_depth_sweep));
    g.bench_function("arbiter_contention", |b| {
        b.iter(ablations::arbiter_contention)
    });
    g.bench_function("topology_contention", |b| {
        b.iter(ablations::topology_contention)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
