//! Bench: the Figure 6a area sweep.
//!
//! Regenerates: paper Figure 6a — PELS kGE over links × SCM lines against
//! the Ibex / PicoRV32 reference lines.

use pels_bench::experiments;
use pels_bench::harness::Bench;
use pels_power::pels_area_kge;

fn main() {
    let bench = Bench::from_args("fig6a").sample_size(10);
    bench.run("sweep", || {
        let pts = experiments::fig6a();
        assert_eq!(pts.len(), 24);
        pts
    });
    bench.run("single_point", || pels_area_kge(4, 6));
}
