//! Criterion bench: the Figure 6a area sweep.
//!
//! Regenerates: paper Figure 6a — PELS kGE over links × SCM lines against
//! the Ibex / PicoRV32 reference lines.

use criterion::{criterion_group, criterion_main, Criterion};
use pels_bench::experiments;
use pels_power::pels_area_kge;

fn bench(c: &mut Criterion) {
    c.bench_function("fig6a/sweep", |b| {
        b.iter(|| {
            let pts = experiments::fig6a();
            assert_eq!(pts.len(), 24);
            pts
        })
    });
    c.bench_function("fig6a/single_point", |b| b.iter(|| pels_area_kge(4, 6)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
