//! Bench: the Figure 5 power evaluation.
//!
//! Regenerates: paper Figure 5 — the iso-latency and iso-frequency power
//! comparison between PELS-mediated and Ibex-interrupt-mediated linking.

use pels_bench::experiments;
use pels_bench::harness::Bench;
use pels_soc::{Mediator, Scenario};

fn main() {
    let bench = Bench::from_args("fig5").sample_size(10);
    bench.run("iso_latency_pels_run", || {
        Scenario::iso_latency(Mediator::PelsSequenced).run()
    });
    bench.run("iso_latency_ibex_run", || {
        Scenario::iso_latency(Mediator::IbexIrq).run()
    });
    bench.run("full_figure", experiments::fig5);
}
