//! Bench: the Figure 5 power evaluation.
//!
//! Regenerates: paper Figure 5 — the iso-latency and iso-frequency power
//! comparison between PELS-mediated and Ibex-interrupt-mediated linking.
//! The scenario pair is submitted through the fleet engine (one batch,
//! both runs in parallel on a multi-core host).

use pels_bench::experiments;
use pels_bench::harness::Bench;
use pels_fleet::FleetEngine;
use pels_soc::{Mediator, Scenario};

fn main() {
    let bench = Bench::from_args("fig5").sample_size(10);
    let engine = FleetEngine::auto();
    let pair = vec![
        (
            "iso-latency/pels".to_string(),
            Scenario::iso_latency(Mediator::PelsSequenced),
        ),
        (
            "iso-latency/ibex".to_string(),
            Scenario::iso_latency(Mediator::IbexIrq),
        ),
    ];
    bench.run("iso_latency_pair_fleet", || {
        let report = engine.run_scenarios(&pair);
        assert_eq!(report.failed().count(), 0);
        report
    });
    bench.run("full_figure", experiments::fig5);
}
