//! Criterion bench: the Figure 5 power evaluation.
//!
//! Regenerates: paper Figure 5 — the iso-latency and iso-frequency power
//! comparison between PELS-mediated and Ibex-interrupt-mediated linking.

use criterion::{criterion_group, criterion_main, Criterion};
use pels_bench::experiments;
use pels_soc::{Mediator, Scenario};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("iso_latency_pels_run", |b| {
        b.iter(|| Scenario::iso_latency(Mediator::PelsSequenced).run())
    });
    g.bench_function("iso_latency_ibex_run", |b| {
        b.iter(|| Scenario::iso_latency(Mediator::IbexIrq).run())
    });
    g.bench_function("full_figure", |b| b.iter(experiments::fig5));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
