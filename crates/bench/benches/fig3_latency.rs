//! Criterion bench: the Figure 3 per-stage latency measurement.
//!
//! Regenerates: paper Figure 3 (stage latencies are *asserted* in the
//! `pels-bench` unit tests; this bench times the cycle-accurate run that
//! produces them).

use criterion::{criterion_group, criterion_main, Criterion};
use pels_bench::experiments;

fn bench(c: &mut Criterion) {
    c.bench_function("fig3/per_stage_measurement", |b| {
        b.iter(|| {
            let rows = experiments::fig3();
            assert_eq!(rows.len(), 4);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
