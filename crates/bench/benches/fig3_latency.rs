//! Bench: the Figure 3 per-stage latency measurement.
//!
//! Regenerates: paper Figure 3 (stage latencies are *asserted* in the
//! `pels-bench` unit tests; this bench times the cycle-accurate run that
//! produces them).

use pels_bench::experiments;
use pels_bench::harness::Bench;

fn main() {
    let bench = Bench::from_args("fig3").sample_size(10);
    bench.run("per_stage_measurement", || {
        let rows = experiments::fig3();
        assert_eq!(rows.len(), 4);
        rows
    });
}
