//! Bench: the Figure 6b PULPissimo breakdown.
//!
//! Regenerates: paper Figure 6b — the share of PULPissimo area a 4-link
//! PELS occupies, with and without the 192 KiB L2 SRAM. The breakdown
//! grid (links × SCM lines) fans out through the fleet engine's generic
//! map.

use pels_bench::harness::Bench;
use pels_fleet::{FleetEngine, JobError};
use pels_power::pulpissimo_breakdown;

fn main() {
    let bench = Bench::from_args("fig6b").sample_size(10);
    let engine = FleetEngine::auto();
    let grid: Vec<(usize, usize)> = (1..=8).flat_map(|l| [4, 6, 8].map(|s| (l, s))).collect();
    bench.run("breakdown_grid", || {
        let results = engine.map(
            &grid,
            |&(links, lines)| (links * lines) as u64,
            |&(links, lines)| {
                let (blocks, frac_logic, frac_sram) = pulpissimo_breakdown(links, lines);
                assert!(frac_logic > frac_sram);
                Ok::<_, JobError>(blocks)
            },
        );
        assert!(results.iter().all(|r| r.result.is_ok()));
        results
    });
}
