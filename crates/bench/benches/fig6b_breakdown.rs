//! Bench: the Figure 6b PULPissimo breakdown.
//!
//! Regenerates: paper Figure 6b — the share of PULPissimo area a 4-link
//! PELS occupies, with and without the 192 KiB L2 SRAM.

use pels_bench::harness::Bench;
use pels_power::pulpissimo_breakdown;

fn main() {
    let bench = Bench::from_args("fig6b").sample_size(10);
    bench.run("breakdown", || {
        let (blocks, frac_logic, frac_sram) = pulpissimo_breakdown(4, 6);
        assert!(frac_logic > frac_sram);
        blocks
    });
}
