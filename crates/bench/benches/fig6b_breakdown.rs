//! Criterion bench: the Figure 6b PULPissimo breakdown.
//!
//! Regenerates: paper Figure 6b — the share of PULPissimo area a 4-link
//! PELS occupies, with and without the 192 KiB L2 SRAM.

use criterion::{criterion_group, criterion_main, Criterion};
use pels_power::pulpissimo_breakdown;

fn bench(c: &mut Criterion) {
    c.bench_function("fig6b/breakdown", |b| {
        b.iter(|| {
            let (blocks, frac_logic, frac_sram) = pulpissimo_breakdown(4, 6);
            assert!(frac_logic > frac_sram);
            blocks
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
