//! Criterion bench: raw simulation throughput (SoC cycles per second of
//! host time) — the meta-benchmark for the behavioural substrate itself,
//! across PELS configurations and mediators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pels_soc::{Mediator, Scenario, SocBuilder};

const CYCLES: u64 = 10_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.throughput(Throughput::Elements(CYCLES));

    for links in [1usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("idle_soc_links", links),
            &links,
            |b, &links| {
                b.iter(|| {
                    let mut soc = SocBuilder::new().pels_links(links).build();
                    soc.trace_mut().set_enabled(false);
                    soc.run(CYCLES);
                    soc.cycle()
                })
            },
        );
    }

    for mediator in [Mediator::PelsSequenced, Mediator::IbexIrq] {
        g.bench_with_input(
            BenchmarkId::new("linking_workload", mediator.to_string()),
            &mediator,
            |b, &mediator| {
                let mut s = Scenario::iso_frequency(mediator);
                s.events = 50;
                b.iter(|| s.run().events_completed)
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
