//! Bench: raw simulation throughput (SoC cycles per second of host
//! time) — the meta-benchmark for the behavioural substrate itself,
//! across PELS configurations, the naive-scheduler baseline, and both
//! mediators.

use pels_bench::harness::Bench;
use pels_bench::throughput;
use pels_cpu::asm;
use pels_soc::mem_map::RESET_PC;
use pels_soc::{ExecMode, Mediator, Scenario, SocBuilder};

const CYCLES: u64 = 10_000;

/// A SoC whose CPU spins (`addi x1,x1,1; j .-4`) while every peripheral
/// is quiescent — the `Soc::tick`-level microbench isolating active-cycle
/// cost: whole-SoC skips are impossible (the CPU is busy), so each cycle
/// pays the peripheral-scheduling and fetch/decode overhead directly.
fn busy_cpu_soc(naive: bool) -> pels_soc::Soc {
    let mut soc = SocBuilder::new().build();
    soc.trace_mut().set_enabled(false);
    soc.load_program(RESET_PC, &[asm::addi(1, 1, 1), asm::jal(0, -4)]);
    if naive {
        soc.set_naive_scheduling(true);
        soc.cpu_mut().set_decode_cache_enabled(false);
    }
    soc
}

fn main() {
    let bench = Bench::from_args("sim_throughput").sample_size(10);

    for links in [1usize, 4, 8] {
        bench.run_throughput(&format!("idle_soc_links/{links}"), CYCLES, || {
            let mut soc = SocBuilder::new().pels_links(links).build();
            soc.trace_mut().set_enabled(false);
            soc.run(CYCLES);
            soc.cycle()
        });
    }

    // The naive every-cycle baseline the quiescence scheduler replaces.
    bench.run_throughput("idle_soc_naive", CYCLES, || {
        let mut soc = SocBuilder::new().build();
        soc.set_naive_scheduling(true);
        soc.trace_mut().set_enabled(false);
        soc.run(CYCLES);
        soc.cycle()
    });

    // Active-cycle cost in isolation (CPU busy, N quiescent slaves), on
    // the fast path and on the forced-naive reference path.
    for (name, naive) in [
        ("busy_cpu_quiescent_slaves", false),
        ("busy_cpu_quiescent_slaves_naive", true),
    ] {
        bench.run_throughput(name, CYCLES, || {
            let mut soc = busy_cpu_soc(naive);
            soc.run(CYCLES);
            soc.cycle()
        });
    }

    for mediator in [Mediator::PelsSequenced, Mediator::IbexIrq] {
        let s = Scenario::builder()
            .mediator(mediator)
            .events(50)
            .build()
            .expect("valid scenario");
        bench.run(&format!("linking_workload/{mediator}"), || {
            s.run().events_completed
        });
    }

    // Superblock execution: straight-line code is the best case (one
    // sealed block covers the whole loop body), branch-heavy code the
    // worst (every branch closes a block after a couple of steps), and
    // pair-dense code is where op fusion pays. Each measured on all
    // three tiers — fused, unfused superblocks, single-step — with
    // everything else identical.
    let straight: Vec<u32> = vec![
        asm::addi(1, 1, 1),
        asm::add(2, 2, 1),
        asm::xor(3, 3, 1),
        asm::addi(4, 4, 3),
        asm::add(5, 5, 2),
        asm::addi(6, 6, 1),
        asm::add(7, 7, 6),
        asm::xor(8, 8, 7),
        asm::addi(9, 9, 2),
        asm::add(10, 10, 9),
        asm::jal(0, -40),
    ];
    let branchy: Vec<u32> = vec![
        asm::addi(1, 1, 1),     // 0x00
        asm::andi(2, 1, 1),     // 0x04
        asm::beq(2, 0, 8),      // 0x08: skip the odd-path increment
        asm::addi(3, 3, 1),     // 0x0C
        asm::addi(4, 4, 1),     // 0x10
        asm::jal(0, -0x14),     // 0x14
    ];
    let pair_dense: Vec<u32> = vec![
        asm::lui(5, 0x1000),    // lui+addi fuse
        asm::addi(5, 5, 0x21),
        asm::addi(1, 1, 1),     // same-rd immediate chains fuse
        asm::addi(1, 1, 2),
        asm::addi(2, 2, 3),
        asm::addi(2, 2, 5),
        asm::slt(12, 0, 5),     // compare feeds its branch: fuses
        asm::bne(12, 0, -28),
    ];
    for (kernel, program) in [
        ("straight_line", &straight),
        ("branch_heavy", &branchy),
        ("pair_dense", &pair_dense),
    ] {
        for mode in ["fused", "superblock", "single_step"] {
            bench.run_throughput(&format!("superblock/{kernel}/{mode}"), CYCLES, || {
                let mut soc = busy_cpu_soc(false);
                soc.load_program(RESET_PC, program);
                match mode {
                    "superblock" => soc.cpu_mut().set_fusion_enabled(false),
                    "single_step" => soc.cpu_mut().set_superblocks_enabled(false),
                    _ => {}
                }
                soc.run(CYCLES);
                soc.cycle()
            });
        }
    }

    // End-to-end active path: the same scenarios with the fast path off
    // (`ExecMode::Naive`) — the before/after pair behind the tracked
    // `linking_speedup` / `irq_speedup` fields.
    for mediator in [Mediator::PelsSequenced, Mediator::IbexIrq] {
        let s = Scenario::builder()
            .mediator(mediator)
            .events(50)
            .exec_mode(ExecMode::Naive)
            .build()
            .expect("valid scenario");
        bench.run(&format!("active_path_naive/{mediator}"), || {
            s.run().events_completed
        });
    }

    // The tracked artifact rows (the same measurement `reproduce
    // sim_throughput` writes to BENCH_sim_throughput.json).
    let rows = throughput::measure(3);
    print!("{}", throughput::render(&rows));
}
