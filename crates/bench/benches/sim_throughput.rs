//! Bench: raw simulation throughput (SoC cycles per second of host
//! time) — the meta-benchmark for the behavioural substrate itself,
//! across PELS configurations, the naive-scheduler baseline, and both
//! mediators.

use pels_bench::harness::Bench;
use pels_bench::throughput;
use pels_soc::{Mediator, Scenario, SocBuilder};

const CYCLES: u64 = 10_000;

fn main() {
    let bench = Bench::from_args("sim_throughput").sample_size(10);

    for links in [1usize, 4, 8] {
        bench.run_throughput(&format!("idle_soc_links/{links}"), CYCLES, || {
            let mut soc = SocBuilder::new().pels_links(links).build();
            soc.trace_mut().set_enabled(false);
            soc.run(CYCLES);
            soc.cycle()
        });
    }

    // The naive every-cycle baseline the quiescence scheduler replaces.
    bench.run_throughput("idle_soc_naive", CYCLES, || {
        let mut soc = SocBuilder::new().build();
        soc.set_naive_scheduling(true);
        soc.trace_mut().set_enabled(false);
        soc.run(CYCLES);
        soc.cycle()
    });

    for mediator in [Mediator::PelsSequenced, Mediator::IbexIrq] {
        let s = Scenario::builder()
            .mediator(mediator)
            .events(50)
            .build()
            .expect("valid scenario");
        bench.run(&format!("linking_workload/{mediator}"), || {
            s.run().events_completed
        });
    }

    // The tracked artifact rows (the same measurement `reproduce
    // sim_throughput` writes to BENCH_sim_throughput.json).
    let rows = throughput::measure(3);
    print!("{}", throughput::render(&rows));
}
