//! Bench: fleet batch throughput.
//!
//! Times the reference 8-job sweep (2 mediators × 2 frequencies × 2 link
//! counts) on a single worker and on the full worker pool, reporting
//! jobs per second for each. On a multi-core host the pool run should
//! approach `workers ×` the serial rate; the engine also verifies the
//! two runs reduce to bit-identical digests.

use pels_bench::harness::Bench;
use pels_fleet::{engine::host_parallelism, FleetEngine, SweepSpec};
use pels_soc::Mediator;

fn main() {
    let bench = Bench::from_args("fleet").sample_size(10);
    let spec = SweepSpec::new()
        .mediators(&[Mediator::PelsSequenced, Mediator::PelsInstant])
        .freqs_mhz(&[27.0, 55.0])
        .links(&[1, 4]);
    let jobs = spec.jobs().expect("reference sweep is valid");
    let n = jobs.len() as u64;

    let serial = FleetEngine::new(1);
    let pool = FleetEngine::auto();
    println!(
        "fleet: {n} jobs, host parallelism {}, pool workers {}",
        host_parallelism(),
        pool.workers()
    );

    let d1 = serial.run_scenarios(&jobs).digest();
    bench.run_throughput("serial_1_worker", n, || serial.run_scenarios(&jobs));
    let sample = bench.run_throughput("pool_auto_workers", n, || pool.run_scenarios(&jobs));
    let _ = sample;
    let dn = pool.run_scenarios(&jobs).digest();
    assert_eq!(d1, dn, "fleet reports must be bit-identical across worker counts");
    println!("fleet: digest {d1:016x} identical on 1 and {} worker(s)", pool.workers());
}
