//! Criterion bench: the Section IV-B latency comparison.
//!
//! Regenerates: the 2 / 7 / 16-cycle linking-latency table (instant,
//! sequenced, Ibex interrupt).

use criterion::{criterion_group, criterion_main, Criterion};
use pels_soc::{Mediator, Scenario};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency_paths");
    g.sample_size(10);
    for (name, mediator) in [
        ("instant", Mediator::PelsInstant),
        ("sequenced", Mediator::PelsSequenced),
        ("ibex_irq", Mediator::IbexIrq),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| Scenario::latency_probe(mediator).run().stats)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
