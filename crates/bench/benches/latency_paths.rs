//! Bench: the Section IV-B latency comparison.
//!
//! Regenerates: the 2 / 7 / 16-cycle linking-latency table (instant,
//! sequenced, Ibex interrupt).

use pels_bench::harness::Bench;
use pels_soc::{Mediator, Scenario};

fn main() {
    let bench = Bench::from_args("latency_paths").sample_size(10);
    for (name, mediator) in [
        ("instant", Mediator::PelsInstant),
        ("sequenced", Mediator::PelsSequenced),
        ("ibex_irq", Mediator::IbexIrq),
    ] {
        bench.run(name, || Scenario::latency_probe(mediator).run().stats);
    }
}
