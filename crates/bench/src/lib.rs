//! # pels-bench — regenerating every table and figure of the paper
//!
//! One module per evaluation artifact:
//!
//! * [`sota`] — **Table I**: the feature comparison of autonomous
//!   peripheral-event handling systems;
//! * [`experiments`] — **Figure 3** (per-stage command latencies),
//!   **Figure 5** (iso-latency / iso-frequency power), the **Section
//!   IV-B latency comparison** (2 / 7 / 16 cycles), **Figure 6a** (area
//!   sweep) and **Figure 6b** (PULPissimo area breakdown);
//! * [`ablations`] — the design-choice studies DESIGN.md calls out:
//!   private SCM vs shared-memory fetch, trigger-FIFO depth, arbitration
//!   policy and fabric topology;
//! * [`throughput`] — the simulator's own cycles-per-second meta-
//!   benchmark, tracked across PRs (`BENCH_sim_throughput.json`).
//!
//! The `reproduce` binary renders all of them as text tables; the
//! benches under `benches/` (plain `harness = false` binaries driven by
//! [`harness`]) time the underlying simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod harness;
pub mod sota;
pub mod throughput;
