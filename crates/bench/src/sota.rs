//! Table I: feature comparison of autonomous peripheral-event handling
//! systems.
//!
//! The paper's Table I is qualitative; we encode it as a typed feature
//! model so the comparison is regenerable (and extensible — adding a new
//! system is one struct literal) and so the paper's *claim* — that PELS
//! is the only system offering both instant and sequenced actions in the
//! open — is checkable by a test rather than by eyeballing.

use std::fmt;

/// Event-routing topology of a linking system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Multiplexer/demultiplexer channels (one producer per channel).
    Channel,
    /// Full connection matrix.
    Matrix,
    /// No dedicated event interconnect (CPU-style access paths).
    None,
}

impl fmt::Display for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Routing::Channel => f.write_str("channel"),
            Routing::Matrix => f.write_str("matrix"),
            Routing::None => f.write_str("-"),
        }
    }
}

/// Event-processing capability attached to the routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Processing {
    /// No processing: pure routing.
    None,
    /// Fixed combinational functions of the routed events.
    Combinational,
    /// Configurable logic blocks (small embedded FPGA fabric).
    Clb,
    /// Vendor-specific custom function blocks (LUTs, limited broadcast).
    Custom,
    /// A microcoded engine (NXP XGATE; PELS).
    Microcode,
}

impl fmt::Display for Processing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Processing::None => f.write_str("-"),
            Processing::Combinational => f.write_str("combinational"),
            Processing::Clb => f.write_str("CLB"),
            Processing::Custom => f.write_str("custom"),
            Processing::Microcode => f.write_str("microcode"),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct SotaSystem {
    /// Vendor/system name.
    pub name: &'static str,
    /// Industry or academia.
    pub origin: Origin,
    /// Event-routing topology.
    pub routing: Routing,
    /// Processing capability.
    pub processing: Processing,
    /// Single-wire event lines between peripherals.
    pub instant_actions: bool,
    /// Arbitrary commands over the system interconnect.
    pub sequenced_actions: bool,
    /// Implementation available in the open-source domain.
    pub open_source: bool,
}

/// Where a system comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Commercial silicon.
    Industry,
    /// Published academic design.
    Academia,
}

/// The systems of Table I, in the paper's order, with PELS last.
pub fn table1() -> Vec<SotaSystem> {
    vec![
        SotaSystem {
            name: "Silicon Labs PRS",
            origin: Origin::Industry,
            routing: Routing::Channel,
            processing: Processing::Combinational,
            instant_actions: true,
            sequenced_actions: false,
            open_source: false,
        },
        SotaSystem {
            name: "Renesas LELC",
            origin: Origin::Industry,
            routing: Routing::Channel,
            processing: Processing::Clb,
            instant_actions: true,
            sequenced_actions: false,
            open_source: false,
        },
        SotaSystem {
            name: "Microchip EVSYS",
            origin: Origin::Industry,
            routing: Routing::Channel,
            processing: Processing::Custom,
            instant_actions: true,
            sequenced_actions: false,
            open_source: false,
        },
        SotaSystem {
            name: "Nordic PPI",
            origin: Origin::Industry,
            routing: Routing::Channel,
            processing: Processing::Custom,
            instant_actions: true,
            sequenced_actions: false,
            open_source: false,
        },
        SotaSystem {
            name: "STMicroelectronics PIM",
            origin: Origin::Industry,
            routing: Routing::Matrix,
            processing: Processing::None,
            instant_actions: true,
            sequenced_actions: false,
            open_source: false,
        },
        SotaSystem {
            name: "NXP XGATE",
            origin: Origin::Industry,
            routing: Routing::None,
            processing: Processing::Microcode,
            instant_actions: false,
            sequenced_actions: true,
            open_source: false,
        },
        SotaSystem {
            name: "AESRN (Bjornerud et al.)",
            origin: Origin::Academia,
            routing: Routing::Channel,
            processing: Processing::Clb,
            instant_actions: true,
            sequenced_actions: false,
            open_source: false,
        },
        SotaSystem {
            name: "PELS (this work)",
            origin: Origin::Academia,
            routing: Routing::Channel,
            processing: Processing::Microcode,
            instant_actions: true,
            sequenced_actions: true,
            open_source: true,
        },
    ]
}

/// Renders the table as aligned text.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:<9} {:<14} {:<8} {:<10} {:<6}\n",
        "System", "Routing", "Processing", "Instant", "Sequenced", "Open"
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');
    let tick = |b: bool| if b { "yes" } else { "no" };
    for s in table1() {
        out.push_str(&format!(
            "{:<26} {:<9} {:<14} {:<8} {:<10} {:<6}\n",
            s.name,
            s.routing.to_string(),
            s.processing.to_string(),
            tick(s.instant_actions),
            tick(s.sequenced_actions),
            tick(s.open_source),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_the_papers_eight_rows() {
        assert_eq!(table1().len(), 8);
    }

    #[test]
    fn pels_is_the_only_open_source_system() {
        let open: Vec<_> = table1().into_iter().filter(|s| s.open_source).collect();
        assert_eq!(open.len(), 1);
        assert!(open[0].name.contains("PELS"));
    }

    #[test]
    fn pels_uniquely_combines_instant_and_sequenced() {
        let both: Vec<_> = table1()
            .into_iter()
            .filter(|s| s.instant_actions && s.sequenced_actions)
            .collect();
        assert_eq!(both.len(), 1, "the paper's central Table I claim");
        assert!(both[0].name.contains("PELS"));
    }

    #[test]
    fn xgate_is_the_only_prior_microcode_system() {
        let prior_microcode: Vec<_> = table1()
            .into_iter()
            .filter(|s| s.processing == Processing::Microcode && !s.name.contains("PELS"))
            .collect();
        assert_eq!(prior_microcode.len(), 1);
        assert_eq!(prior_microcode[0].name, "NXP XGATE");
        assert!(!prior_microcode[0].instant_actions);
    }

    #[test]
    fn render_contains_all_systems() {
        let text = render_table1();
        for s in table1() {
            assert!(text.contains(s.name), "missing {}", s.name);
        }
    }
}
