//! Design-choice ablations.
//!
//! Each function removes one of PELS's design decisions and measures what
//! returns: the latency/energy cost of fetching microcode over the shared
//! bus (vs the private SCM of Section III-1b), the events lost without
//! the trigger FIFO, the worst-case latency divergence under
//! fixed-priority arbitration (vs the round-robin of Section IV-A), and
//! the contention relief a per-slave crossbar buys (Section III-1).

use pels_core::{ActionMode, Command, Program, TriggerCond};
use pels_fleet::{FleetEngine, JobError};
use pels_interconnect::{ArbiterKind, Topology};
use pels_periph::Timer;
use pels_soc::mem_map::{pels_word_offset, APB_BASE, GPIO_OFFSET, TIMER_OFFSET, UART_OFFSET, WDT_OFFSET};
use pels_soc::{Mediator, Scenario, Soc, SocBuilder};
use pels_interconnect::ApbSlave;
use pels_sim::EventVector;
use std::fmt::Write as _;

/// Unwraps a batch of infallible fleet jobs back into plain results.
fn collect_infallible<R>(results: Vec<pels_fleet::JobResult<R>>) -> Vec<R> {
    results
        .into_iter()
        .map(|r| r.result.expect("ablation jobs are infallible"))
        .collect()
}

/// Result of the SCM-vs-shared-memory fetch ablation.
#[derive(Debug, Clone, Copy)]
pub struct ScmAblation {
    /// Sequenced-action latency with the private SCM (paper design).
    pub scm_latency: u64,
    /// Latency when every fetch pays a shared-bus round trip.
    pub shared_latency: u64,
}

/// Re-runs the sequenced-action probe with microcode fetches stalled by a
/// bus round trip (3 cycles), the cost a shared-SRAM instruction store
/// would impose (Section II-C2's "using the system's local memory trades
/// off area reuse for latency").
pub fn scm_vs_shared_fetch() -> ScmAblation {
    let scm = Scenario::latency_probe(Mediator::PelsSequenced)
        .run()
        .stats
        .min;

    let s = Scenario::latency_probe(Mediator::PelsSequenced);
    let mut soc = s_build_with_fetch_stall(&s, 3);
    arm(&mut soc, 60);
    soc.run_until(5_000, |s| s.trace().all("gpio", "padout").len() >= 5);
    let shared = soc
        .trace()
        .latencies_all(("spi", "eot"), ("gpio", "padout"))
        .iter()
        .map(|t| t.as_ps() / s.freq().period_ps())
        .min()
        .expect("events completed");

    ScmAblation {
        scm_latency: scm,
        shared_latency: shared,
    }
}

fn s_build_with_fetch_stall(s: &Scenario, stall: u32) -> Soc {
    let mut soc = SocBuilder::new()
        .frequency(s.freq())
        .sensor(s.sensor())
        .spi_clkdiv(s.spi_clkdiv())
        .build();
    {
        let link = soc.pels_mut().link_mut(0);
        link.set_mask(EventVector::mask_of(&[0]))
            .set_base(APB_BASE)
            .set_fetch_stall(stall);
        link.load_program(&s.link_program()).expect("program fits");
    }
    soc.spi_mut().set_default_len(s.spi_words);
    soc.load_program(
        pels_soc::mem_map::RESET_PC,
        &[pels_cpu::asm::wfi(), pels_cpu::asm::jal(0, -4)],
    );
    soc
}

fn arm(soc: &mut Soc, period: u32) {
    soc.timer_mut().write(Timer::CMP, period).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE)
        .unwrap();
}

/// Result of the trigger-FIFO ablation.
#[derive(Debug, Clone, Copy)]
pub struct FifoAblation {
    /// FIFO depth under test.
    pub depth: usize,
    /// Triggers produced by the burst.
    pub triggers: u64,
    /// Triggers lost because no buffer space was available.
    pub dropped: u64,
}

/// Fires events faster than the link can service them and counts losses
/// for several FIFO depths (depth 0 = the unbuffered strawman; the paper
/// buffers "to prevent interference with a running execution unit").
pub fn fifo_depth_sweep() -> Vec<FifoAblation> {
    let depths = [0usize, 1, 2, 4];
    collect_infallible(FleetEngine::auto().map(
        &depths,
        |_| 1,
        |&depth| {
            let mut soc = SocBuilder::new().fifo_depth(depth).build();
            {
                let link = soc.pels_mut().link_mut(0);
                link.set_mask(EventVector::mask_of(&[2])); // timer compare
                link.set_base(APB_BASE);
                // A slow program: 10-cycle wait then pulse.
                link.load_program(
                    &Program::new(vec![
                        Command::Wait { cycles: 10 },
                        Command::Action {
                            mode: ActionMode::Pulse,
                            group: 0,
                            mask: 1 << 20,
                        },
                        Command::Halt,
                    ])
                    .expect("valid program"),
                )
                .expect("fits");
            }
            soc.load_program(
                pels_soc::mem_map::RESET_PC,
                &[pels_cpu::asm::wfi(), pels_cpu::asm::jal(0, -4)],
            );
            // Timer fires every 4 cycles: ~3x faster than the 13-cycle
            // program.
            arm(&mut soc, 3);
            soc.run(400);
            let trig = soc.pels().link(0).trigger();
            Ok::<_, JobError>(FifoAblation {
                depth,
                triggers: trig.triggers(),
                dropped: trig.drops(),
            })
        },
    ))
}

/// Result of the arbitration-policy ablation.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterAblation {
    /// Arbitration policy under test.
    pub policy: ArbiterKind,
    /// Fastest link's event→actuation latency (cycles).
    pub best_latency: u64,
    /// Slowest link's latency (cycles) — the predictability metric.
    pub worst_latency: u64,
}

/// Triggers four links simultaneously, all issuing sequenced writes to
/// different peripherals over the shared bus, and measures the spread of
/// completion latencies under round-robin vs fixed-priority arbitration.
pub fn arbiter_contention() -> Vec<ArbiterAblation> {
    let policies = [ArbiterKind::RoundRobin, ArbiterKind::FixedPriority];
    collect_infallible(FleetEngine::auto().map(
        &policies,
        |_| 1,
        |&policy| Ok::<_, JobError>(run_contention(policy, Topology::Shared)),
    ))
}

/// Same contention pattern, comparing the shared bus against a per-slave
/// crossbar (the topology axis of Section IV-A).
pub fn topology_contention() -> Vec<(Topology, ArbiterAblation)> {
    let topologies = [Topology::Shared, Topology::PerSlaveCrossbar];
    collect_infallible(FleetEngine::auto().map(
        &topologies,
        |_| 1,
        |&t| Ok::<_, JobError>((t, run_contention(ArbiterKind::RoundRobin, t))),
    ))
}

fn run_contention(policy: ArbiterKind, topology: Topology) -> ArbiterAblation {
    let mut soc = SocBuilder::new()
        .pels_links(4)
        .scm_lines(4)
        .arbiter(policy)
        .topology(topology)
        .timer_starts_spi(false)
        .build();
    // Each link writes a different peripheral register on the same
    // trigger (timer compare on line 2).
    let targets = [
        pels_word_offset(GPIO_OFFSET, pels_periph::Gpio::PADOUTSET),
        pels_word_offset(UART_OFFSET, pels_periph::Uart::CLKDIV),
        pels_word_offset(WDT_OFFSET, pels_periph::Watchdog::LOAD),
        pels_word_offset(TIMER_OFFSET, Timer::VALUE),
    ];
    for (i, &offset) in targets.iter().enumerate() {
        let link = soc.pels_mut().link_mut(i);
        link.set_mask(EventVector::mask_of(&[2]))
            .set_condition(TriggerCond::Any)
            .set_base(APB_BASE);
        link.load_program(
            &Program::new(vec![
                Command::Write {
                    offset,
                    value: 0x10 + i as u32,
                },
                Command::Halt,
            ])
            .expect("valid program"),
        )
        .expect("fits");
    }
    soc.load_program(
        pels_soc::mem_map::RESET_PC,
        &[pels_cpu::asm::wfi(), pels_cpu::asm::jal(0, -4)],
    );
    arm(&mut soc, 100);
    soc.run(140);
    let t0 = soc
        .trace()
        .first("timer", "compare")
        .expect("timer fired")
        .time
        .as_ps();
    let period = soc.frequency().period_ps();
    let mut lats: Vec<u64> = (0..4)
        .map(|i| {
            let halt = soc
                .trace()
                .first(&format!("pels.link{i}"), "halt")
                .unwrap_or_else(|| panic!("link{i} completed"));
            (halt.time.as_ps() - t0) / period
        })
        .collect();
    lats.sort_unstable();
    ArbiterAblation {
        policy,
        best_latency: lats[0],
        worst_latency: lats[3],
    }
}

/// Jitter of one mediation path under bus contention.
#[derive(Debug, Clone, Copy)]
pub struct JitterPoint {
    /// Mediation path.
    pub mediator: Mediator,
    /// Minimum event→actuation latency (cycles).
    pub min: u64,
    /// Maximum latency (cycles).
    pub max: u64,
    /// Jitter = max − min: the paper's predictability metric.
    pub jitter: u64,
}

/// Measures linking jitter while the core hammers the peripheral bus
/// with an endless polling loop — the predictability story of Section I
/// ("by circumventing the CPU and the system interconnect, instant
/// actions reduce access latency and minimize jitter"): instant actions
/// stay jitter-free because they never touch the bus; sequenced actions
/// absorb arbitration slots; a contended handler varies most.
pub fn jitter_under_contention() -> Vec<JitterPoint> {
    let mediators = [Mediator::PelsInstant, Mediator::PelsSequenced];
    collect_infallible(FleetEngine::auto().map(
        &mediators,
        |_| 1,
        |&mediator| {
            // A noisy sensor makes the contending CPU loop's length
            // data-dependent (below), so each linking event meets the bus
            // in a different phase — without it, the periodic poll loop
            // phase-locks to the events and jitter degenerates to zero.
            let s = Scenario::latency_probe(mediator)
                .to_builder()
                .sensor(pels_soc::SensorKind::NoisyRamp {
                    start: 2.5,
                    slope_per_us: 0.0,
                    sigma: 0.05,
                    seed: 99,
                })
                .build()
                .expect("jitter scenario is valid");
            let mut soc = SocBuilder::new()
                .frequency(s.freq())
                .sensor(s.sensor())
                .spi_clkdiv(s.spi_clkdiv())
                .build();
            {
                let link = soc.pels_mut().link_mut(0);
                link.set_mask(EventVector::mask_of(&[0])).set_base(APB_BASE);
                link.load_program(&s.link_program()).expect("fits");
            }
            soc.spi_mut().set_default_len(s.spi_words);
            // The core hammers the bus with sample reads and inserts a
            // sample-dependent delay (0–3 iterations): realistic,
            // irregular contention.
            use pels_cpu::asm;
            let mut p = Vec::new();
            p.extend(asm::li32(
                5,
                pels_soc::mem_map::apb_reg(pels_soc::mem_map::SPI_OFFSET, pels_periph::Spi::LAST),
            ));
            p.push(asm::lw(6, 5, 0)); // poll:
            p.push(asm::andi(7, 6, 3));
            p.push(asm::beq(7, 0, 12)); // d: done -> back to poll
            p.push(asm::addi(7, 7, -1));
            p.push(asm::jal(0, -8)); // -> d
            p.push(asm::jal(0, -20)); // -> poll
            soc.load_program(pels_soc::mem_map::RESET_PC, &p);
            arm(&mut soc, 61);
            let marker = if mediator == Mediator::PelsInstant {
                ("pels.link0", "action")
            } else {
                ("gpio", "padout")
            };
            soc.run_until(30_000, |s| s.trace().all(marker.0, marker.1).len() >= 40);
            let lats: Vec<u64> = soc
                .trace()
                .latencies_all(("spi", "eot"), marker)
                .iter()
                .map(|t| t.as_ps() / s.freq().period_ps())
                .collect();
            assert!(lats.len() >= 20, "{mediator}: events completed under load");
            let min = *lats.iter().min().expect("non-empty");
            let max = *lats.iter().max().expect("non-empty");
            Ok::<_, JobError>(JitterPoint {
                mediator,
                min,
                max,
                jitter: max - min,
            })
        },
    ))
}

/// Result of the calibration-sensitivity study.
#[derive(Debug, Clone, Copy)]
pub struct SensitivityPoint {
    /// SRAM read energy assumed (pJ).
    pub e_sram_read_pj: f64,
    /// Resulting iso-latency active-power ratio (Ibex/PELS).
    pub ratio: f64,
}

/// Sweeps the most influential calibration constant — the SRAM access
/// energy — across a generous ±50 % band and recomputes the headline
/// iso-latency active-power ratio from the *same* measured activity.
/// The paper's conclusion (PELS wins by ~2–3×) must not hinge on the
/// exact pJ figure chosen.
pub fn calibration_sensitivity() -> Vec<SensitivityPoint> {
    use pels_power::{Calibration, PowerModel};
    use pels_soc::power_setup::component_areas;

    // The two measurement runs are independent: one fleet batch. The
    // sensitivity sweep itself is pure arithmetic over the *same*
    // measured activity, so it stays serial.
    let jobs = vec![
        (
            "pels".to_string(),
            Scenario::iso_latency(Mediator::PelsSequenced),
        ),
        ("ibex".to_string(), Scenario::iso_latency(Mediator::IbexIrq)),
    ];
    let fleet = FleetEngine::auto().run_scenarios(&jobs);
    let pels_report = fleet
        .outcome("pels")
        .expect("pels measurement succeeded")
        .report
        .clone();
    let ibex_report = fleet
        .outcome("ibex")
        .expect("ibex measurement succeeded")
        .report
        .clone();

    [10.0, 15.0, 20.0, 25.0, 30.0]
        .into_iter()
        .map(|e_sram| {
            let mut calib = Calibration::tsmc65();
            calib.e_sram_read_pj = e_sram;
            calib.e_sram_write_pj = e_sram + 2.0;
            let mut model = PowerModel::new(calib);
            for (name, kge) in component_areas(pels_report.pels) {
                model.add_component(name, kge);
            }
            let pels = pels_report.active_power(&model).total();
            let ibex = ibex_report.active_power(&model).total();
            SensitivityPoint {
                e_sram_read_pj: e_sram,
                ratio: ibex / pels,
            }
        })
        .collect()
}

/// Result of the polling-I/O-processor ablation.
#[derive(Debug, Clone, Copy)]
pub struct PollingAblation {
    /// Event→actuation latency of the busy-polling core (cycles).
    pub polling_latency: u64,
    /// Latency of the PELS sequenced path on the same workload.
    pub pels_latency: u64,
    /// SRAM accesses per microsecond while polling.
    pub polling_sram_rate: f64,
    /// SRAM accesses per microsecond with PELS mediating.
    pub pels_sram_rate: f64,
}

/// The general-purpose I/O-processor approach at its worst (paper Figure
/// 1a without even WFI): the core busy-polls the SPI status register.
/// Latency can beat the interrupt path (no entry overhead) but the core
/// never sleeps and hammers the SRAM with fetches — the flexibility/
/// efficiency trade-off of Section II-C2.
pub fn polling_vs_pels() -> PollingAblation {
    use pels_soc::baseline::threshold_polling_image;
    use pels_sim::ActivityKind;

    // Polling run.
    let s = Scenario::latency_probe(Mediator::PelsSequenced);
    let mut soc = SocBuilder::new()
        .frequency(s.freq())
        .sensor(s.sensor())
        .spi_clkdiv(s.spi_clkdiv())
        .build();
    soc.pels_mut().set_enabled(false);
    soc.spi_mut().set_default_len(s.spi_words);
    let image = threshold_polling_image(s.threshold_code());
    for (addr, words) in &image.segments {
        soc.load_program(*addr, words);
    }
    arm(&mut soc, s.timer_period_cycles());
    soc.run_until(20_000, |s| s.trace().all("gpio", "padout").len() >= 10);
    let polling_latency = soc
        .trace()
        .latencies_all(("spi", "eot"), ("gpio", "padout"))
        .iter()
        .map(|t| t.as_ps() / s.freq().period_ps())
        .min()
        .expect("polling actuated");
    let window_us = soc.window_time().as_us_f64();
    let activity = soc.drain_activity();
    let polling_sram_rate = (activity.count("sram", ActivityKind::SramRead)
        + activity.count("sram", ActivityKind::SramWrite)) as f64
        / window_us;

    // PELS reference on the identical workload.
    let report = s.run();
    let pels_window_us = report.active_window.as_us_f64();
    let pels_sram_rate = (report.active_activity.count("sram", ActivityKind::SramRead)
        + report
            .active_activity
            .count("sram", ActivityKind::SramWrite)) as f64
        / pels_window_us;

    PollingAblation {
        polling_latency,
        pels_latency: report.stats.min,
        polling_sram_rate,
        pels_sram_rate,
    }
}

/// One point of the link-count scaling study.
#[derive(Debug, Clone, Copy)]
pub struct LinkScalingPoint {
    /// Links triggered simultaneously.
    pub links: usize,
    /// Best (first-served) completion latency in cycles.
    pub best_latency: u64,
    /// Worst (last-served) completion latency in cycles.
    pub worst_latency: u64,
}

/// Quantifies Section III-1's observation that "the arbitration policy
/// affects each link's typical and maximum latency, especially in the
/// worst-case scenario where all links try to access peripherals
/// simultaneously": 1..=8 links all fire on one event, each issuing one
/// sequenced write over the shared bus.
pub fn link_scaling() -> Vec<LinkScalingPoint> {
    let link_counts: Vec<usize> = (1..=8).collect();
    collect_infallible(FleetEngine::auto().map(
        &link_counts,
        |&links| links as u64,
        |&links| {
            let mut soc = SocBuilder::new()
                .pels_links(links)
                .scm_lines(4)
                .timer_starts_spi(false)
                .build();
            for i in 0..links {
                let link = soc.pels_mut().link_mut(i);
                link.set_mask(EventVector::mask_of(&[2]))
                    .set_base(APB_BASE);
                link.load_program(
                    &Program::new(vec![
                        Command::Write {
                            offset: pels_word_offset(
                                GPIO_OFFSET,
                                pels_periph::Gpio::PADOUTSET,
                            ),
                            value: 1 << i,
                        },
                        Command::Halt,
                    ])
                    .expect("valid program"),
                )
                .expect("fits");
            }
            soc.load_program(
                pels_soc::mem_map::RESET_PC,
                &[pels_cpu::asm::wfi(), pels_cpu::asm::jal(0, -4)],
            );
            arm(&mut soc, 50);
            soc.run(60 + 10 * links as u64);
            let t0 = soc
                .trace()
                .first("timer", "compare")
                .expect("timer fired")
                .time
                .as_ps();
            let period = soc.frequency().period_ps();
            let mut lats: Vec<u64> = (0..links)
                .map(|i| {
                    let halt = soc
                        .trace()
                        .first(&format!("pels.link{i}"), "halt")
                        .unwrap_or_else(|| panic!("link{i} completed"));
                    (halt.time.as_ps() - t0) / period
                })
                .collect();
            lats.sort_unstable();
            Ok::<_, JobError>(LinkScalingPoint {
                links,
                best_latency: lats[0],
                worst_latency: *lats.last().expect("non-empty"),
            })
        },
    ))
}

/// Renders all ablations as text.
pub fn render_all() -> String {
    let mut out = String::from("Ablations\n=========\n\n");

    let scm = scm_vs_shared_fetch();
    let _ = writeln!(
        out,
        "[scm-vs-shared-fetch] sequenced action: private SCM = {} cycles, \
         shared-memory fetch = {} cycles (+{})",
        scm.scm_latency,
        scm.shared_latency,
        scm.shared_latency - scm.scm_latency
    );

    let _ = writeln!(out, "\n[trigger-fifo] burst of back-to-back events:");
    for f in fifo_depth_sweep() {
        let _ = writeln!(
            out,
            "  depth {}: {} triggers, {} dropped",
            f.depth, f.triggers, f.dropped
        );
    }

    let _ = writeln!(out, "\n[arbitration] 4 links contending on the shared bus:");
    for a in arbiter_contention() {
        let _ = writeln!(
            out,
            "  {:<15} best {} / worst {} cycles (spread {})",
            a.policy.to_string(),
            a.best_latency,
            a.worst_latency,
            a.worst_latency - a.best_latency
        );
    }

    let _ = writeln!(out, "\n[topology] same contention, round-robin:");
    for (t, a) in topology_contention() {
        let _ = writeln!(
            out,
            "  {:<20} best {} / worst {} cycles",
            t.to_string(),
            a.best_latency,
            a.worst_latency
        );
    }

    let _ = writeln!(out, "\n[jitter under contention] polling core on the bus:");
    for j in jitter_under_contention() {
        let _ = writeln!(
            out,
            "  {:<16} min {} / max {} cycles (jitter {})",
            j.mediator.to_string(),
            j.min,
            j.max,
            j.jitter
        );
    }

    let _ = writeln!(out, "\n[calibration sensitivity] iso-latency active ratio vs E_sram:");
    for pt in calibration_sensitivity() {
        let _ = writeln!(
            out,
            "  E_sram_read = {:>4.0} pJ -> ratio {:.2}x",
            pt.e_sram_read_pj, pt.ratio
        );
    }

    let p = polling_vs_pels();
    let _ = writeln!(
        out,
        "\n[polling i/o processor] latency {} vs pels {} cycles; \
         sram traffic {:.0} vs {:.1} accesses/us",
        p.polling_latency, p.pels_latency, p.polling_sram_rate, p.pels_sram_rate
    );

    let _ = writeln!(
        out,
        "\n[link scaling] N links firing simultaneously, shared bus:"
    );
    for p in link_scaling() {
        let _ = writeln!(
            out,
            "  {} link(s): best {} / worst {} cycles",
            p.links, p.best_latency, p.worst_latency
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_fetch_costs_latency() {
        let r = scm_vs_shared_fetch();
        assert_eq!(r.scm_latency, 7);
        assert!(
            r.shared_latency >= r.scm_latency + 3,
            "shared-memory fetch must pay at least one bus round trip \
             ({} vs {})",
            r.shared_latency,
            r.scm_latency
        );
    }

    #[test]
    fn unbuffered_link_drops_events() {
        let sweep = fifo_depth_sweep();
        let depth0 = sweep.iter().find(|f| f.depth == 0).expect("depth 0 run");
        assert!(depth0.dropped > 0, "unbuffered design must lose events");
        let depth4 = sweep.iter().find(|f| f.depth == 4).expect("depth 4 run");
        assert!(
            depth4.dropped < depth0.dropped,
            "buffering reduces losses"
        );
    }

    #[test]
    fn fixed_priority_worsens_worst_case() {
        let runs = arbiter_contention();
        let rr = &runs[0];
        let fp = &runs[1];
        assert_eq!(rr.policy, ArbiterKind::RoundRobin);
        // Fixed priority serves link 0 first every time; the last link
        // waits at least as long as under round-robin.
        assert!(fp.worst_latency >= rr.worst_latency);
        assert!(fp.best_latency <= rr.best_latency);
    }

    #[test]
    fn instant_actions_are_jitter_free_under_contention() {
        let points = jitter_under_contention();
        let instant = points
            .iter()
            .find(|p| p.mediator == Mediator::PelsInstant)
            .expect("instant point");
        let sequenced = points
            .iter()
            .find(|p| p.mediator == Mediator::PelsSequenced)
            .expect("sequenced point");
        assert_eq!(instant.jitter, 0, "instant actions never touch the bus");
        assert_eq!(instant.min, 2);
        assert!(
            sequenced.jitter > 0,
            "arbitration must show up in the sequenced path"
        );
        assert!(sequenced.min >= 7);
    }

    #[test]
    fn conclusion_robust_to_sram_energy_choice() {
        let sweep = calibration_sensitivity();
        assert_eq!(sweep.len(), 5);
        for pt in &sweep {
            assert!(
                pt.ratio > 1.7 && pt.ratio < 3.2,
                "ratio {:.2} at E_sram = {} pJ leaves the paper's band",
                pt.ratio,
                pt.e_sram_read_pj
            );
        }
        // More expensive SRAM favours PELS monotonically.
        for w in sweep.windows(2) {
            assert!(w[1].ratio > w[0].ratio);
        }
    }

    #[test]
    fn polling_burns_memory_bandwidth_for_its_latency() {
    let p = polling_vs_pels();
        // Polling may react fast, but the energy story is catastrophic:
        // orders of magnitude more SRAM traffic than the sleeping-core
        // PELS configuration.
        assert!(p.polling_latency <= 20, "polling reacts quickly");
        assert_eq!(p.pels_latency, 7);
        // Measured: ~26 accesses/us polling vs ~2/us with PELS (the
        // PELS figure is almost entirely the common uDMA landing).
        assert!(
            p.polling_sram_rate > 10.0 * p.pels_sram_rate,
            "polling sram {:.1}/us vs pels {:.1}/us",
            p.polling_sram_rate,
            p.pels_sram_rate
        );
    }

    #[test]
    fn worst_case_latency_grows_linearly_with_links() {
        let points = link_scaling();
        assert_eq!(points[0].links, 1);
        // Single link: the uncontended 4-cycle write path (write commands
        // commit 2 bus cycles after issue; observable one later).
        let solo = points[0].worst_latency;
        for w in points.windows(2) {
            assert!(
                w[1].worst_latency >= w[0].worst_latency,
                "worst case must not improve with more contenders"
            );
        }
        let eight = points.last().expect("eight-link point");
        // Each extra link adds one bus occupancy (2 cycles) to the tail.
        assert!(
            eight.worst_latency >= solo + 2 * 7,
            "8-way contention stretches the tail: {} vs {}",
            eight.worst_latency,
            solo
        );
        assert_eq!(
            points[0].best_latency, points[7].best_latency,
            "the first-served link never waits"
        );
    }

    #[test]
    fn crossbar_collapses_contention() {
        let runs = topology_contention();
        let shared = &runs[0].1;
        let xbar = &runs[1].1;
        assert!(
            xbar.worst_latency < shared.worst_latency,
            "parallel slave lanes must shorten the worst case \
             ({} vs {})",
            xbar.worst_latency,
            shared.worst_latency
        );
        assert_eq!(
            xbar.worst_latency, xbar.best_latency,
            "disjoint targets complete in lock-step on a crossbar"
        );
    }
}
