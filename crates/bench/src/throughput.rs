//! Raw simulation-throughput measurement (simulated SoC cycles per
//! wall-clock second) — the meta-benchmark for the behavioural substrate
//! itself, tracked across PRs via `BENCH_sim_throughput.json`.
//!
//! Three workloads bound the space:
//!
//! * **idle SoC** — CPU parked in `wfi`, all peripherals quiescent: the
//!   dominant state of the paper's duty-cycled ULP workloads and the one
//!   the quiescence-aware scheduler accelerates. Measured on both the
//!   fast path and the naive every-cycle path so the speedup itself is a
//!   tracked number.
//! * **linking workload** — the iso-frequency PELS-mediated sensing
//!   scenario (events actually flow through trigger/exec every period).
//! * **IRQ baseline** — the same scenario mediated by Ibex interrupts
//!   (CPU wake/sleep traffic every event).
//! * **busy linking workload** — a PELS link fires while the CPU crunches
//!   a straight-line kernel that never sleeps: the workload superblock
//!   execution accelerates. Measured on three tiers — fused superblocks
//!   (the default fast path), unfused superblocks (the pre-fusion
//!   path), and the CPU forced to single-step — so both the superblock
//!   speedup (`linking_superblock_speedup`) and the op-fusion speedup
//!   on top of it (`linking_fused_speedup`) are tracked numbers.

use crate::harness::{fmt_rate, Bench};
use pels_sim::Frequency;
use pels_soc::{ExecMode, Mediator, Scenario, SocBuilder};
use pels_cpu::asm;
use pels_interconnect::ApbSlave as _;
use pels_periph::Timer;
use pels_soc::event_map::{AL_GPIO_TOGGLE, EV_TIMER_CMP};
use pels_soc::mem_map::RESET_PC;

/// Simulated cycles per idle-SoC measurement iteration.
pub const IDLE_CYCLES: u64 = 200_000;

/// Simulated cycles per busy-linking measurement iteration.
pub const SUPERBLOCK_CYCLES: u64 = 200_000;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Workload key (stable across PRs; used as the JSON field name).
    pub name: &'static str,
    /// Simulated SoC cycles per iteration.
    pub cycles: u64,
    /// Simulated cycles per wall-clock second (median-of-samples).
    pub cycles_per_sec: f64,
}

fn idle_soc(naive: bool) -> pels_soc::Soc {
    let mut soc = SocBuilder::new().build();
    soc.set_naive_scheduling(naive);
    soc.trace_mut().set_enabled(false);
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc
}

/// Execution tier a busy-linking measurement runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyTier {
    /// The default fast path: superblocks executed from the fused
    /// op program.
    Fused,
    /// Superblocks with op fusion disabled — the generic per-step
    /// block loop (the pre-fusion reference).
    Superblock,
    /// One instruction per scheduler visit.
    SingleStep,
}

/// A PELS link toggles a GPIO on every timer compare while the CPU
/// crunches a straight-line ALU kernel — peripheral events keep flowing,
/// but the CPU never sleeps, so host throughput is bound by instruction
/// execution rather than by whole-SoC skips.
pub fn busy_linking_soc(tier: BusyTier) -> pels_soc::Soc {
    let mut soc = SocBuilder::new().build();
    soc.trace_mut().set_enabled(false);
    soc.pels_mut()
        .link_mut(0)
        .set_mask(pels_sim::EventVector::mask_of(&[EV_TIMER_CMP]));
    soc.pels_mut()
        .link_mut(0)
        .load_program(
            &pels_core::Program::new(vec![
                pels_core::Command::Action {
                    mode: pels_core::ActionMode::Toggle,
                    group: 0,
                    mask: 1 << (AL_GPIO_TOGGLE - 16),
                },
                pels_core::Command::Halt,
            ])
            .expect("valid"),
        )
        .expect("fits");
    // A 14-deep chain of register-only ALU ops closed by a compare-and-
    // branch: one sealed superblock covering the whole loop body, with a
    // pair-dense instruction mix (lui+addi, same-rd immediate chains and
    // a compare feeding its branch) so the fused tier exercises every
    // fusion class, plus register-register singles for the generic path.
    soc.load_program(
        RESET_PC,
        &[
            asm::lui(5, 0x1000),
            asm::addi(5, 5, 0x21),
            asm::addi(1, 1, 1),
            asm::addi(1, 1, 2),
            asm::addi(2, 2, 3),
            asm::addi(2, 2, 5),
            asm::xori(3, 3, 0x11),
            asm::addi(3, 3, 1),
            asm::addi(4, 4, 1),
            asm::addi(4, 4, 1),
            asm::add(6, 6, 1),
            asm::xor(7, 7, 2),
            asm::slt(12, 0, 5),
            asm::bne(12, 0, -52),
        ],
    );
    soc.timer_mut().write(Timer::CMP, 512).unwrap();
    soc.timer_mut()
        .write(Timer::CTRL, Timer::CTRL_ENABLE)
        .unwrap();
    match tier {
        BusyTier::Fused => {}
        BusyTier::Superblock => soc.cpu_mut().set_fusion_enabled(false),
        BusyTier::SingleStep => soc.cpu_mut().set_superblocks_enabled(false),
    }
    soc
}

fn scenario_cycles(mediator: Mediator, naive: bool) -> (Scenario, u64) {
    let exec = if naive { ExecMode::Naive } else { ExecMode::Fast };
    let s = Scenario::iso_frequency(mediator)
        .to_builder()
        .exec_mode(exec)
        .build()
        .expect("preset variant stays valid");
    let r = s.run();
    let window = r.active_window.checked_add(r.idle_window).expect("window fits");
    let cycles = Frequency::from_mhz(r.freq.as_mhz()).cycles_in(window);
    (s, cycles)
}

/// Runs all workloads with `samples` timing samples each.
pub fn measure(samples: usize) -> Vec<ThroughputRow> {
    let bench = Bench::new("sim_throughput", samples);
    let mut rows = Vec::new();

    for (name, naive) in [("idle_soc", false), ("idle_soc_naive", true)] {
        let rate = bench.run_throughput(name, IDLE_CYCLES, || {
            let mut soc = idle_soc(naive);
            soc.run(IDLE_CYCLES);
            soc.cycle()
        });
        rows.push(ThroughputRow {
            name,
            cycles: IDLE_CYCLES,
            cycles_per_sec: rate,
        });
    }

    // Each active workload is measured on the fast path and on the
    // forced-naive reference path, so the active-path speedup itself is
    // a tracked number (both runs simulate bit-identical SoCs).
    for (name, mediator, naive) in [
        ("linking_workload", Mediator::PelsSequenced, false),
        ("linking_workload_naive", Mediator::PelsSequenced, true),
        ("irq_baseline", Mediator::IbexIrq, false),
        ("irq_baseline_naive", Mediator::IbexIrq, true),
    ] {
        let (s, cycles) = scenario_cycles(mediator, naive);
        let rate = bench.run_throughput(name, cycles, || s.run().events_completed);
        rows.push(ThroughputRow {
            name,
            cycles,
            cycles_per_sec: rate,
        });
    }

    // The busy-CPU linking workload across the three execution tiers
    // (everything but the tier identical, and all three simulate
    // bit-identical SoCs).
    for (name, tier) in [
        ("linking_fused", BusyTier::Fused),
        ("linking_superblock", BusyTier::Superblock),
        ("linking_superblock_single_step", BusyTier::SingleStep),
    ] {
        let rate = bench.run_throughput(name, SUPERBLOCK_CYCLES, || {
            let mut soc = busy_linking_soc(tier);
            soc.run(SUPERBLOCK_CYCLES);
            soc.cycle()
        });
        rows.push(ThroughputRow {
            name,
            cycles: SUPERBLOCK_CYCLES,
            cycles_per_sec: rate,
        });
    }
    rows
}

/// The speedup of row `fast` over row `reference`.
pub fn speedup_vs(rows: &[ThroughputRow], fast: &str, reference: &str) -> Option<f64> {
    let fast = rows.iter().find(|r| r.name == fast)?;
    let reference = rows.iter().find(|r| r.name == reference)?;
    Some(fast.cycles_per_sec / reference.cycles_per_sec)
}

/// The fast-over-naive speedup for workload `name` (its reference row is
/// `<name>_naive`).
pub fn speedup_of(rows: &[ThroughputRow], name: &str) -> Option<f64> {
    speedup_vs(rows, name, &format!("{name}_naive"))
}

/// The superblock-execution speedup on the busy linking workload (its
/// reference row retires one instruction per scheduler visit).
pub fn superblock_speedup(rows: &[ThroughputRow]) -> Option<f64> {
    speedup_vs(rows, "linking_superblock", "linking_superblock_single_step")
}

/// The op-fusion speedup on the busy linking workload: the fused tier
/// over the unfused superblock tier (the pre-fusion fast path).
pub fn fused_speedup(rows: &[ThroughputRow]) -> Option<f64> {
    speedup_vs(rows, "linking_fused", "linking_superblock")
}

/// The idle-path speedup (fast over naive) from a measured row set.
pub fn idle_speedup(rows: &[ThroughputRow]) -> Option<f64> {
    speedup_of(rows, "idle_soc")
}

/// Renders the human-readable summary.
pub fn render(rows: &[ThroughputRow]) -> String {
    let mut s = String::from("sim_throughput - simulated SoC cycles per host second\n");
    for r in rows {
        s.push_str(&format!(
            "  {:<24} {:>10}cycles/s   ({} simulated cycles/iter)\n",
            r.name,
            fmt_rate(r.cycles_per_sec),
            r.cycles,
        ));
    }
    if let Some(x) = idle_speedup(rows) {
        s.push_str(&format!(
            "  idle-path speedup (quiescence scheduler vs naive): {x:.1}x\n"
        ));
    }
    if let Some(x) = speedup_of(rows, "linking_workload") {
        s.push_str(&format!("  active-path speedup (linking workload): {x:.1}x\n"));
    }
    if let Some(x) = speedup_of(rows, "irq_baseline") {
        s.push_str(&format!("  active-path speedup (irq baseline): {x:.1}x\n"));
    }
    if let Some(x) = superblock_speedup(rows) {
        s.push_str(&format!(
            "  superblock speedup (busy linking workload): {x:.1}x\n"
        ));
    }
    if let Some(x) = fused_speedup(rows) {
        s.push_str(&format!(
            "  op-fusion speedup (fused over unfused superblocks): {x:.1}x\n"
        ));
    }
    s
}

/// Version of the `BENCH_sim_throughput.json` schema, recorded in the
/// artifact itself. Bump when a key is renamed or its meaning changes
/// (adding keys is non-breaking: the writer merges, never drops).
pub const SCHEMA_VERSION: u64 = 2;

/// Parses the flat JSON objects the `BENCH_*` artifacts use — one
/// `"key": value` pair per entry, values numbers or strings, no nesting —
/// into `(key, raw value text)` pairs in file order. `None` when `text`
/// is not such an object (the caller then starts from scratch rather
/// than guessing at a partial parse).
fn parse_flat_object(text: &str) -> Option<Vec<(String, String)>> {
    let mut rest = text.trim().strip_prefix('{')?.strip_suffix('}')?.trim();
    let mut pairs = Vec::new();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let end = rest.find('"')?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..].trim_start().strip_prefix(':')?.trim_start();
        let value = if let Some(in_str) = rest.strip_prefix('"') {
            let end = in_str.find('"')?;
            rest = in_str[end + 1..].trim_start();
            format!("\"{}\"", &in_str[..end])
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let v = rest[..end].trim();
            if v.is_empty() {
                return None;
            }
            let v = v.to_string();
            rest = &rest[end..];
            v
        };
        pairs.push((key, value));
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => {}
            None => return None,
        }
    }
    Some(pairs)
}

/// Serializes the rows (plus host metadata for a `samples`-sample run)
/// into the `BENCH_sim_throughput.json` artifact, merging into
/// `existing` (the file's previous contents, if any): keys this run
/// doesn't produce are kept verbatim in place, keys it does are
/// updated, new keys append. A run of a subset of workloads therefore
/// never drops another run's fields. Flat object, hand-rolled — no serde
/// in the offline dependency graph.
pub fn merge_json(rows: &[ThroughputRow], samples: usize, existing: Option<&str>) -> String {
    let mut updates: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            (
                format!("{}_cycles_per_sec", r.name),
                format!("{:.1}", r.cycles_per_sec),
            )
        })
        .collect();
    if let Some(x) = idle_speedup(rows) {
        updates.push(("idle_speedup".into(), format!("{x:.2}")));
    }
    if let Some(x) = speedup_of(rows, "linking_workload") {
        updates.push(("linking_speedup".into(), format!("{x:.2}")));
    }
    if let Some(x) = speedup_of(rows, "irq_baseline") {
        updates.push(("irq_speedup".into(), format!("{x:.2}")));
    }
    if let Some(x) = superblock_speedup(rows) {
        updates.push(("linking_superblock_speedup".into(), format!("{x:.2}")));
    }
    if let Some(x) = fused_speedup(rows) {
        updates.push(("linking_fused_speedup".into(), format!("{x:.2}")));
    }
    updates.push(("idle_cycles_per_iter".into(), IDLE_CYCLES.to_string()));
    // Host metadata: numbers in this artifact are only comparable on a
    // similar host, so record the parallelism the run had available and
    // how many timing samples backed each median.
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    updates.push(("host_parallelism".into(), parallelism.to_string()));
    updates.push(("bench_samples".into(), samples.to_string()));
    updates.push(("schema_version".into(), SCHEMA_VERSION.to_string()));

    let mut merged = existing.and_then(parse_flat_object).unwrap_or_default();
    for (key, value) in updates {
        match merged.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => merged.push((key, value)),
        }
    }

    let mut s = String::from("{\n");
    for (i, (key, value)) in merged.iter().enumerate() {
        let sep = if i + 1 < merged.len() { "," } else { "" };
        s.push_str(&format!("  \"{key}\": {value}{sep}\n"));
    }
    s.push_str("}\n");
    s
}

/// [`merge_json`] with no prior contents — fresh serialization.
pub fn to_json(rows: &[ThroughputRow], samples: usize) -> String {
    merge_json(rows, samples, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed() {
        let rows = vec![
            ThroughputRow {
                name: "idle_soc",
                cycles: 10,
                cycles_per_sec: 2e6,
            },
            ThroughputRow {
                name: "idle_soc_naive",
                cycles: 10,
                cycles_per_sec: 5e5,
            },
        ];
        let j = to_json(&rows, 10);
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert!(j.contains("\"bench_samples\": 10"));
        assert!(j.contains("\"host_parallelism\": "));
        assert!(j.contains("\"idle_soc_cycles_per_sec\": 2000000.0"));
        assert!(j.contains("\"idle_speedup\": 4.00"));
        // No trailing comma before the closing brace.
        assert!(!j.contains(",\n}"));
    }

    #[test]
    fn speedup_needs_both_rows() {
        assert!(idle_speedup(&[]).is_none());
        assert!(speedup_of(&[], "linking_workload").is_none());
    }

    #[test]
    fn merge_preserves_foreign_keys_and_updates_own() {
        let existing = "{\n  \"someone_elses_metric\": 123.4,\n  \"idle_soc_cycles_per_sec\": 1.0,\n  \"a_string\": \"with, comma\"\n}\n";
        let rows = vec![ThroughputRow {
            name: "idle_soc",
            cycles: 10,
            cycles_per_sec: 2e6,
        }];
        let j = merge_json(&rows, 10, Some(existing));
        // Foreign keys survive verbatim, own keys are updated in place.
        assert!(j.contains("\"someone_elses_metric\": 123.4"));
        assert!(j.contains("\"a_string\": \"with, comma\""));
        assert!(j.contains("\"idle_soc_cycles_per_sec\": 2000000.0"));
        assert!(!j.contains("\"idle_soc_cycles_per_sec\": 1.0"));
        assert!(j.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(!j.contains(",\n}"));
        // The output round-trips through its own parser.
        assert!(parse_flat_object(&j).is_some());
    }

    #[test]
    fn merge_starts_fresh_on_unparseable_existing() {
        let rows = vec![ThroughputRow {
            name: "idle_soc",
            cycles: 10,
            cycles_per_sec: 2e6,
        }];
        for garbage in ["not json", "{ broken", "{\"k\": }"] {
            let j = merge_json(&rows, 10, Some(garbage));
            assert!(j.contains("\"idle_soc_cycles_per_sec\": 2000000.0"));
            assert!(j.ends_with("}\n"));
        }
    }

    #[test]
    fn superblock_pair_serializes_its_speedup() {
        let rows = vec![
            ThroughputRow {
                name: "linking_superblock",
                cycles: 10,
                cycles_per_sec: 9e7,
            },
            ThroughputRow {
                name: "linking_superblock_single_step",
                cycles: 10,
                cycles_per_sec: 3e7,
            },
        ];
        assert_eq!(superblock_speedup(&rows), Some(3.0));
        let j = to_json(&rows, 10);
        assert!(j.contains("\"linking_superblock_speedup\": 3.00"));
        // The single-step row is a reference, never paired as `_naive`.
        assert!(speedup_of(&rows, "linking_superblock").is_none());
    }

    #[test]
    fn fused_tier_serializes_its_speedup_over_superblocks() {
        let rows = vec![
            ThroughputRow {
                name: "linking_fused",
                cycles: 10,
                cycles_per_sec: 1.8e8,
            },
            ThroughputRow {
                name: "linking_superblock",
                cycles: 10,
                cycles_per_sec: 9e7,
            },
        ];
        assert_eq!(fused_speedup(&rows), Some(2.0));
        let j = to_json(&rows, 10);
        assert!(j.contains("\"linking_fused_speedup\": 2.00"));
    }

    #[test]
    fn busy_linking_workloads_simulate_identically() {
        // The measurement must time identical simulations: same final
        // cycle, retirement and GPIO traffic on all three execution
        // tiers — and each tier must actually run on its own path.
        let mut fused = busy_linking_soc(BusyTier::Fused);
        let mut unfused = busy_linking_soc(BusyTier::Superblock);
        let mut single = busy_linking_soc(BusyTier::SingleStep);
        fused.run(2_000);
        unfused.run(2_000);
        single.run(2_000);
        for other in [&unfused, &single] {
            assert_eq!(fused.cycle(), other.cycle());
            assert_eq!(fused.cpu().cycles(), other.cpu().cycles());
            assert_eq!(fused.cpu().retired(), other.cpu().retired());
        }
        let activity = fused.drain_activity();
        assert_eq!(activity, unfused.drain_activity());
        assert_eq!(activity, single.drain_activity());
        assert!(fused.superblock_stats().fused_ops > 0);
        assert!(unfused.superblock_stats().block_runs > 0);
        assert_eq!(unfused.superblock_stats().fused_ops, 0);
        assert_eq!(single.superblock_stats().block_runs, 0);
    }

    #[test]
    fn idle_soc_workloads_simulate_identically() {
        // The measurement must time identical simulations: same final
        // cycle on both scheduler paths.
        let mut fast = idle_soc(false);
        let mut naive = idle_soc(true);
        fast.run(500);
        naive.run(500);
        assert_eq!(fast.cycle(), naive.cycle());
        assert_eq!(fast.cpu().cycles(), naive.cpu().cycles());
    }
}
