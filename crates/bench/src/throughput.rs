//! Raw simulation-throughput measurement (simulated SoC cycles per
//! wall-clock second) — the meta-benchmark for the behavioural substrate
//! itself, tracked across PRs via `BENCH_sim_throughput.json`.
//!
//! Three workloads bound the space:
//!
//! * **idle SoC** — CPU parked in `wfi`, all peripherals quiescent: the
//!   dominant state of the paper's duty-cycled ULP workloads and the one
//!   the quiescence-aware scheduler accelerates. Measured on both the
//!   fast path and the naive every-cycle path so the speedup itself is a
//!   tracked number.
//! * **linking workload** — the iso-frequency PELS-mediated sensing
//!   scenario (events actually flow through trigger/exec every period).
//! * **IRQ baseline** — the same scenario mediated by Ibex interrupts
//!   (CPU wake/sleep traffic every event).

use crate::harness::{fmt_rate, Bench};
use pels_sim::Frequency;
use pels_soc::{Mediator, Scenario, SocBuilder};
use pels_cpu::asm;
use pels_soc::mem_map::RESET_PC;

/// Simulated cycles per idle-SoC measurement iteration.
pub const IDLE_CYCLES: u64 = 200_000;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Workload key (stable across PRs; used as the JSON field name).
    pub name: &'static str,
    /// Simulated SoC cycles per iteration.
    pub cycles: u64,
    /// Simulated cycles per wall-clock second (median-of-samples).
    pub cycles_per_sec: f64,
}

fn idle_soc(naive: bool) -> pels_soc::Soc {
    let mut soc = SocBuilder::new().build();
    soc.set_naive_scheduling(naive);
    soc.trace_mut().set_enabled(false);
    soc.load_program(RESET_PC, &[asm::wfi(), asm::jal(0, -4)]);
    soc
}

fn scenario_cycles(mediator: Mediator) -> (Scenario, u64) {
    let s = Scenario::iso_frequency(mediator);
    let r = s.run();
    let window = r.active_window.checked_add(r.idle_window).expect("window fits");
    let cycles = Frequency::from_mhz(r.freq.as_mhz()).cycles_in(window);
    (s, cycles)
}

/// Runs all workloads with `samples` timing samples each.
pub fn measure(samples: usize) -> Vec<ThroughputRow> {
    let bench = Bench::new("sim_throughput", samples);
    let mut rows = Vec::new();

    for (name, naive) in [("idle_soc", false), ("idle_soc_naive", true)] {
        let rate = bench.run_throughput(name, IDLE_CYCLES, || {
            let mut soc = idle_soc(naive);
            soc.run(IDLE_CYCLES);
            soc.cycle()
        });
        rows.push(ThroughputRow {
            name,
            cycles: IDLE_CYCLES,
            cycles_per_sec: rate,
        });
    }

    for (name, mediator) in [
        ("linking_workload", Mediator::PelsSequenced),
        ("irq_baseline", Mediator::IbexIrq),
    ] {
        let (s, cycles) = scenario_cycles(mediator);
        let rate = bench.run_throughput(name, cycles, || s.run().events_completed);
        rows.push(ThroughputRow {
            name,
            cycles,
            cycles_per_sec: rate,
        });
    }
    rows
}

/// The idle-path speedup (fast over naive) from a measured row set.
pub fn idle_speedup(rows: &[ThroughputRow]) -> Option<f64> {
    let fast = rows.iter().find(|r| r.name == "idle_soc")?;
    let naive = rows.iter().find(|r| r.name == "idle_soc_naive")?;
    Some(fast.cycles_per_sec / naive.cycles_per_sec)
}

/// Renders the human-readable summary.
pub fn render(rows: &[ThroughputRow]) -> String {
    let mut s = String::from("sim_throughput - simulated SoC cycles per host second\n");
    for r in rows {
        s.push_str(&format!(
            "  {:<18} {:>10}cycles/s   ({} simulated cycles/iter)\n",
            r.name,
            fmt_rate(r.cycles_per_sec),
            r.cycles,
        ));
    }
    if let Some(x) = idle_speedup(rows) {
        s.push_str(&format!(
            "  idle-path speedup (quiescence scheduler vs naive): {x:.1}x\n"
        ));
    }
    s
}

/// Serializes the rows as the `BENCH_sim_throughput.json` artifact (flat
/// object so downstream diffing stays trivial; no serde in the offline
/// graph).
pub fn to_json(rows: &[ThroughputRow]) -> String {
    let mut s = String::from("{\n");
    for r in rows {
        s.push_str(&format!(
            "  \"{}_cycles_per_sec\": {:.1},\n",
            r.name, r.cycles_per_sec
        ));
    }
    if let Some(x) = idle_speedup(rows) {
        s.push_str(&format!("  \"idle_speedup\": {x:.2},\n"));
    }
    s.push_str(&format!("  \"idle_cycles_per_iter\": {IDLE_CYCLES}\n}}\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed() {
        let rows = vec![
            ThroughputRow {
                name: "idle_soc",
                cycles: 10,
                cycles_per_sec: 2e6,
            },
            ThroughputRow {
                name: "idle_soc_naive",
                cycles: 10,
                cycles_per_sec: 5e5,
            },
        ];
        let j = to_json(&rows);
        assert!(j.starts_with('{') && j.ends_with("}\n"));
        assert!(j.contains("\"idle_soc_cycles_per_sec\": 2000000.0"));
        assert!(j.contains("\"idle_speedup\": 4.00"));
        // No trailing comma before the closing brace.
        assert!(!j.contains(",\n}"));
    }

    #[test]
    fn speedup_needs_both_rows() {
        assert!(idle_speedup(&[]).is_none());
    }

    #[test]
    fn idle_soc_workloads_simulate_identically() {
        // The measurement must time identical simulations: same final
        // cycle on both scheduler paths.
        let mut fast = idle_soc(false);
        let mut naive = idle_soc(true);
        fast.run(500);
        naive.run(500);
        assert_eq!(fast.cycle(), naive.cycle());
        assert_eq!(fast.cpu().cycles(), naive.cpu().cycles());
    }
}
