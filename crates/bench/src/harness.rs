//! Minimal self-contained micro-benchmark harness.
//!
//! The offline build carries no external bench framework, so each
//! `[[bench]]` target (all declared `harness = false`) is a plain binary
//! whose `main` drives a [`Bench`]. The CLI understands the two flags our
//! tooling passes — `--sample-size N` and a positional substring filter —
//! and ignores everything else cargo forwards (`--bench`, `--exact`, …),
//! so `cargo bench -- --sample-size 10` works the way the criterion
//! invocation used to.

use std::hint::black_box;
use std::time::Instant;

/// Timing statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest observed iteration.
    pub min_ns: f64,
    /// Median iteration.
    pub median_ns: f64,
    /// Mean iteration.
    pub mean_ns: f64,
    /// Iterations actually timed.
    pub iters: usize,
}

/// A tiny benchmark runner: warm-up, fixed sample count, median/mean
/// report on stdout.
pub struct Bench {
    group: String,
    sample_size: usize,
}

impl Bench {
    /// Creates a runner with an explicit sample count (no CLI parsing).
    pub fn new(group: &str, sample_size: usize) -> Self {
        Bench {
            group: group.to_string(),
            sample_size: sample_size.max(1),
        }
    }

    /// Creates a runner for `group`, reading `--sample-size` (and
    /// tolerating unknown flags) from the process arguments.
    pub fn from_args(group: &str) -> Self {
        let mut sample_size = default_sample_size();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--sample-size" {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    sample_size = n;
                }
            } else if let Some(v) = a.strip_prefix("--sample-size=") {
                if let Ok(n) = v.parse() {
                    sample_size = n;
                }
            }
            // Ignore --bench, --exact, filters, etc. — this harness runs
            // every registered function.
        }
        Bench {
            group: group.to_string(),
            sample_size: sample_size.max(1),
        }
    }

    /// Overrides the default sample count (CLI still wins if given).
    pub fn sample_size(mut self, n: usize) -> Self {
        if !std::env::args().any(|a| a.starts_with("--sample-size")) {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Times `f`, printing `group/name: median …`.
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Sample {
        // Warm-up: one untimed call.
        black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let sample = Sample {
            min_ns: times[0],
            median_ns: times[times.len() / 2],
            mean_ns: times.iter().sum::<f64>() / times.len() as f64,
            iters: times.len(),
        };
        println!(
            "{}/{name}: median {} (mean {}, min {}, n={})",
            self.group,
            fmt_ns(sample.median_ns),
            fmt_ns(sample.mean_ns),
            fmt_ns(sample.min_ns),
            sample.iters,
        );
        sample
    }

    /// Times `f` and reports a rate of `elements` per iteration (e.g.
    /// simulated cycles per wall-clock second).
    pub fn run_throughput<T>(&self, name: &str, elements: u64, f: impl FnMut() -> T) -> f64 {
        let sample = self.run(name, f);
        let rate = elements as f64 / (sample.median_ns / 1e9);
        println!("{}/{name}: {} elem/s", self.group, fmt_rate(rate));
        rate
    }
}

fn default_sample_size() -> usize {
    10
}

/// Renders nanoseconds with an auto-scaled unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Renders an events-per-second rate with an auto-scaled unit.
pub fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_orders_stats() {
        let b = Bench {
            group: "t".into(),
            sample_size: 5,
        };
        let s = b.run("noop", || 1 + 1);
        assert!(s.min_ns <= s.median_ns);
        assert_eq!(s.iters, 5);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(fmt_ns(1.5e9), "1.500 s");
        assert_eq!(fmt_ns(2.5e6), "2.500 ms");
        assert_eq!(fmt_ns(3.5e3), "3.500 µs");
        assert_eq!(fmt_ns(42.0), "42.0 ns");
        assert_eq!(fmt_rate(2.5e6), "2.50 M");
    }
}
