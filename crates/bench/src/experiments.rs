//! The measured experiments: Figure 3, Figure 5, the latency comparison,
//! Figure 6a and Figure 6b.

use pels_fleet::{FleetEngine, JobError, JobOutcome};
use pels_power::{pels_area_kge, pulpissimo_breakdown, IBEX_KGE, PICORV32_KGE};
use pels_soc::power_setup::power_model_for;
use pels_soc::{Mediator, Scenario, SocBuilder};
use std::fmt::Write as _;

/// One measured stage of Figure 3's pseudocode annotations.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Stage name as in the figure.
    pub stage: &'static str,
    /// Measured latency in clock cycles.
    pub measured: u64,
    /// The paper's annotation.
    pub paper: u64,
}

/// Measures the per-stage latencies of Figure 3 from cycle-accurate runs.
///
/// * `instant action` / `sequenced action` come from the minimal-program
///   latency probes;
/// * `capture` / `jump-if` are derived from the link trace of the full
///   threshold program (trigger → capture-complete, capture-complete →
///   action minus the action's own cycle).
pub fn fig3() -> Vec<Fig3Row> {
    let instant = Scenario::latency_probe(Mediator::PelsInstant).run();
    let sequenced = Scenario::latency_probe(Mediator::PelsSequenced).run();

    let threshold = Scenario::iso_frequency(Mediator::PelsInstant).run();
    let period = threshold.freq.period_ps();
    let cyc = |ps: u64| ps / period;
    let t_trigger = threshold
        .trace
        .first("pels.link0", "trigger")
        .expect("link triggered")
        .time
        .as_ps();
    let t_capture = threshold
        .trace
        .first("pels.link0", "capture")
        .expect("capture executed")
        .time
        .as_ps();
    let t_action = threshold
        .trace
        .first("pels.link0", "action")
        .expect("action executed")
        .time
        .as_ps();
    let capture_stage = cyc(t_capture - t_trigger);
    let jump_stage = cyc(t_action - t_capture) - 1; // minus the action's own cycle

    vec![
        Fig3Row {
            stage: "capture (masked read)",
            measured: capture_stage,
            paper: 3,
        },
        Fig3Row {
            stage: "jump-if",
            measured: jump_stage,
            paper: 1,
        },
        Fig3Row {
            stage: "instant action",
            measured: instant.stats.min,
            paper: 2,
        },
        Fig3Row {
            stage: "sequenced action (RMW)",
            measured: sequenced.stats.min,
            paper: 7,
        },
    ]
}

/// Renders Figure 3 as text.
pub fn render_fig3() -> String {
    let mut out = String::from("Figure 3 - per-stage latency [clock cycles]\n");
    let _ = writeln!(out, "{:<26} {:>9} {:>7}", "stage", "measured", "paper");
    for r in fig3() {
        let _ = writeln!(out, "{:<26} {:>9} {:>7}", r.stage, r.measured, r.paper);
    }
    out
}

/// One bar of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Bar {
    /// `iso-latency` or `iso-frequency`.
    pub scenario: &'static str,
    /// `pels` or `ibex`.
    pub system: &'static str,
    /// `idle` or `active`.
    pub mode: &'static str,
    /// Total SoC power (µW).
    pub power_uw: f64,
    /// Memory-system share (µW).
    pub memory_uw: f64,
    /// Operating frequency (MHz).
    pub freq_mhz: f64,
}

/// The complete Figure 5 data set plus the paper's headline ratios.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// All eight bars (2 scenarios × 2 systems × 2 modes).
    pub bars: Vec<Fig5Bar>,
    /// Active-power ratio Ibex/PELS at iso-latency (paper: 2.5×).
    pub iso_latency_active_ratio: f64,
    /// Idle-power ratio at iso-latency (paper: 1.5×).
    pub iso_latency_idle_ratio: f64,
    /// Active-power ratio at iso-frequency (paper: 1.6×).
    pub iso_frequency_active_ratio: f64,
    /// Memory-system power ratio at iso-latency (paper: 3.7×).
    pub iso_latency_memory_ratio: f64,
    /// Memory-system power ratio at iso-frequency (paper: 4.3×).
    pub iso_frequency_memory_ratio: f64,
}

/// Runs the four scenario instances behind Figure 5 — as one fleet batch
/// (the runs are independent, so they parallelize across the worker
/// pool) — and assembles the bars and ratios from the job outcomes.
pub fn fig5() -> Fig5Result {
    let jobs = vec![
        (
            "iso-latency/pels".to_string(),
            Scenario::iso_latency(Mediator::PelsSequenced),
        ),
        (
            "iso-latency/ibex".to_string(),
            Scenario::iso_latency(Mediator::IbexIrq),
        ),
        (
            "iso-frequency/pels".to_string(),
            Scenario::iso_frequency(Mediator::PelsSequenced),
        ),
        (
            "iso-frequency/ibex".to_string(),
            Scenario::iso_frequency(Mediator::IbexIrq),
        ),
    ];
    let fleet = FleetEngine::auto().run_scenarios(&jobs);
    let get = |label: &str| -> &JobOutcome {
        fleet
            .outcome(label)
            .unwrap_or_else(|| panic!("fig5 job `{label}` failed"))
    };

    let mut bars = Vec::new();
    let mut pair = |label: &'static str| {
        let p = get(&format!("{label}/pels"));
        let i = get(&format!("{label}/ibex"));
        for (system, o, mode, power_uw, memory_uw) in [
            ("pels", p, "idle", p.idle_uw, p.idle_memory_uw),
            ("pels", p, "active", p.active_uw, p.active_memory_uw),
            ("ibex", i, "idle", i.idle_uw, i.idle_memory_uw),
            ("ibex", i, "active", i.active_uw, i.active_memory_uw),
        ] {
            bars.push(Fig5Bar {
                scenario: label,
                system,
                mode,
                power_uw,
                memory_uw,
                freq_mhz: o.report.freq.as_mhz(),
            });
        }
        (
            i.active_uw / p.active_uw,
            i.idle_uw / p.idle_uw,
            i.active_memory_uw / p.active_memory_uw,
        )
    };

    let (lat_active, lat_idle, lat_mem) = pair("iso-latency");
    let (freq_active, _freq_idle, freq_mem) = pair("iso-frequency");

    Fig5Result {
        bars,
        iso_latency_active_ratio: lat_active,
        iso_latency_idle_ratio: lat_idle,
        iso_frequency_active_ratio: freq_active,
        iso_latency_memory_ratio: lat_mem,
        iso_frequency_memory_ratio: freq_mem,
    }
}

/// Renders Figure 5 as text.
pub fn render_fig5() -> String {
    let r = fig5();
    let mut out = String::from("Figure 5 - SoC power while waiting for / handling event linking\n");
    let _ = writeln!(
        out,
        "{:<14} {:<6} {:<7} {:>9} {:>10} {:>9}",
        "scenario", "system", "mode", "P [uW]", "mem [uW]", "f [MHz]"
    );
    for b in &r.bars {
        let _ = writeln!(
            out,
            "{:<14} {:<6} {:<7} {:>9.1} {:>10.1} {:>9.1}",
            b.scenario, b.system, b.mode, b.power_uw, b.memory_uw, b.freq_mhz
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "ratio ibex/pels, iso-latency  active : {:.2}x   (paper: 2.5x)",
        r.iso_latency_active_ratio
    );
    let _ = writeln!(
        out,
        "ratio ibex/pels, iso-latency  idle   : {:.2}x   (paper: 1.5x)",
        r.iso_latency_idle_ratio
    );
    let _ = writeln!(
        out,
        "ratio ibex/pels, iso-frequency active: {:.2}x   (paper: 1.6x)",
        r.iso_frequency_active_ratio
    );
    let _ = writeln!(
        out,
        "memory-system ratio, iso-latency     : {:.2}x   (paper: 3.7x)",
        r.iso_latency_memory_ratio
    );
    let _ = writeln!(
        out,
        "memory-system ratio, iso-frequency   : {:.2}x   (paper: 4.3x)",
        r.iso_frequency_memory_ratio
    );
    out
}

/// One row of the Section IV-B latency comparison.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// The mediation path.
    pub path: &'static str,
    /// Measured cycles (event to observable action).
    pub measured: u64,
    /// Measured jitter (max − min) across events.
    pub jitter: u64,
    /// The paper's number.
    pub paper: u64,
}

/// Measures the 2 / 7 / 16-cycle comparison (the three probes run as one
/// fleet batch).
pub fn latency_table() -> Vec<LatencyRow> {
    let rows = [
        ("instant action", Mediator::PelsInstant, 2),
        ("sequenced action", Mediator::PelsSequenced, 7),
        ("ibex interrupt", Mediator::IbexIrq, 16),
    ];
    let jobs: Vec<(String, Scenario)> = rows
        .iter()
        .map(|&(path, mediator, _)| (path.to_string(), Scenario::latency_probe(mediator)))
        .collect();
    let fleet = FleetEngine::auto().run_scenarios(&jobs);
    rows.into_iter()
        .map(|(path, _, paper)| {
            let o = fleet
                .outcome(path)
                .unwrap_or_else(|| panic!("latency probe `{path}` failed"));
            LatencyRow {
                path,
                measured: o.report.stats.min,
                jitter: o.report.stats.jitter(),
                paper,
            }
        })
        .collect()
}

/// Renders the latency comparison as text.
pub fn render_latency() -> String {
    let mut out =
        String::from("Section IV-B - linking-event latency [clock cycles]\n");
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>7} {:>7}",
        "path", "measured", "jitter", "paper"
    );
    for r in latency_table() {
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>7} {:>7}",
            r.path, r.measured, r.jitter, r.paper
        );
    }
    out
}

/// One point of the Figure 6a sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6aPoint {
    /// Number of links.
    pub links: usize,
    /// SCM lines per link.
    pub scm_lines: usize,
    /// Synthesized-area model result (kGE).
    pub kge: f64,
}

/// The Figure 6a sweep: links 1–8 × SCM lines {4, 6, 8}.
pub fn fig6a() -> Vec<Fig6aPoint> {
    let mut points = Vec::new();
    for links in 1..=8 {
        for scm_lines in [4, 6, 8] {
            points.push(Fig6aPoint {
                links,
                scm_lines,
                kge: pels_area_kge(links, scm_lines),
            });
        }
    }
    points
}

/// Renders Figure 6a as text.
pub fn render_fig6a() -> String {
    let mut out = String::from("Figure 6a - PELS area sweep [kGE], TSMC 65nm model\n");
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>8}",
        "links", "4 lines", "6 lines", "8 lines"
    );
    for links in 1..=8 {
        let _ = writeln!(
            out,
            "{:<7} {:>8.1} {:>8.1} {:>8.1}",
            links,
            pels_area_kge(links, 4),
            pels_area_kge(links, 6),
            pels_area_kge(links, 8),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "reference: Ibex     = {IBEX_KGE:.1} kGE (paper: ~27 kGE)");
    let _ = writeln!(
        out,
        "reference: PicoRV32 = {PICORV32_KGE:.1} kGE (paper: ~14.5 kGE)"
    );
    let min = pels_area_kge(1, 4);
    let _ = writeln!(
        out,
        "minimal PELS (1 link, 4 lines) = {min:.1} kGE: {:.1}x under Ibex, {:.1}x under PicoRV32",
        IBEX_KGE / min,
        PICORV32_KGE / min
    );
    out
}

/// Renders Figure 6b as text.
pub fn render_fig6b() -> String {
    let (blocks, frac_logic, frac_sram) = pulpissimo_breakdown(4, 6);
    let total: f64 = blocks.iter().map(|b| b.kge).sum();
    let mut out = String::from(
        "Figure 6b - PULPissimo area breakdown with a 4-link / 6-line PELS\n",
    );
    for b in &blocks {
        let _ = writeln!(
            out,
            "{:<20} {:>8.1} kGE  {:>5.1} %",
            b.name,
            b.kge,
            100.0 * b.kge / total
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "PELS share of logic area          : {:>5.2} % (paper: ~9.5 %)",
        100.0 * frac_logic
    );
    let _ = writeln!(
        out,
        "PELS share incl. 192 KiB L2 SRAM  : {:>5.2} % (paper: ~1 %)",
        100.0 * frac_sram
    );
    out
}

/// One point of the links-vs-power extension sweep.
#[derive(Debug, Clone, Copy)]
pub struct LinkPowerPoint {
    /// PELS links instantiated.
    pub links: usize,
    /// Idle SoC power at 55 MHz (µW).
    pub idle_uw: f64,
    /// PELS area at 6 SCM lines (kGE).
    pub kge: f64,
}

/// Extension (not in the paper): the *power* cost of the Figure 6a area
/// sweep — idle SoC power against instantiated link count, connecting
/// the area knob to the energy budget. Links are cheap in area but their
/// always-on clock load is what a system integrator actually pays.
pub fn extension_link_power() -> Vec<LinkPowerPoint> {
    let link_counts: Vec<usize> = (1..=8).collect();
    // Raw-`Soc` jobs (no `Scenario` layer), fanned out through the
    // engine's generic map: one fresh SoC per worker job.
    FleetEngine::auto()
        .map(
            &link_counts,
            |&links| links as u64, // heavier SoCs first
            |&links| {
                let mut soc = SocBuilder::new().pels_links(links).scm_lines(6).build();
                soc.load_program(
                    pels_soc::mem_map::RESET_PC,
                    &[pels_cpu::asm::wfi(), pels_cpu::asm::jal(0, -4)],
                );
                soc.run(2_000);
                let window = soc.window_time();
                let activity = soc.drain_activity();
                let model = power_model_for(soc.pels().config());
                let idle_uw = model.report(&activity, window).total().as_uw();
                Ok::<_, JobError>(LinkPowerPoint {
                    links,
                    idle_uw,
                    kge: pels_area_kge(links, 6),
                })
            },
        )
        .into_iter()
        .map(|r| r.result.expect("idle-power jobs are infallible"))
        .collect()
}

/// Renders the extension sweep as text.
pub fn render_extension_link_power() -> String {
    let mut out = String::from(
        "Extension - idle SoC power vs PELS link count (55 MHz, 6 SCM lines)
",
    );
    let _ = writeln!(out, "{:<7} {:>10} {:>10}", "links", "kGE", "idle [uW]");
    for p in extension_link_power() {
        let _ = writeln!(out, "{:<7} {:>10.1} {:>10.1}", p.links, p.kge, p.idle_uw);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_stage_latencies_match_paper() {
        for row in fig3() {
            assert_eq!(
                row.measured, row.paper,
                "stage `{}` measured {} vs paper {}",
                row.stage, row.measured, row.paper
            );
        }
    }

    #[test]
    fn latency_table_matches_paper_exactly() {
        for row in latency_table() {
            assert_eq!(row.measured, row.paper, "{}", row.path);
            assert_eq!(row.jitter, 0, "{} should be deterministic", row.path);
        }
    }

    #[test]
    fn fig5_ratios_hold_paper_shape() {
        let r = fig5();
        // PELS wins everywhere, by factors in the paper's neighbourhood.
        assert!(
            r.iso_latency_active_ratio > 1.8 && r.iso_latency_active_ratio < 3.0,
            "iso-latency active {:.2} (paper 2.5)",
            r.iso_latency_active_ratio
        );
        assert!(
            r.iso_latency_idle_ratio > 1.3 && r.iso_latency_idle_ratio < 1.8,
            "iso-latency idle {:.2} (paper 1.5)",
            r.iso_latency_idle_ratio
        );
        assert!(
            r.iso_frequency_active_ratio > 1.25 && r.iso_frequency_active_ratio < 2.0,
            "iso-frequency active {:.2} (paper 1.6)",
            r.iso_frequency_active_ratio
        );
        assert!(
            r.iso_latency_memory_ratio > 3.0 && r.iso_latency_memory_ratio < 5.0,
            "iso-latency memory {:.2} (paper 3.7)",
            r.iso_latency_memory_ratio
        );
        assert!(
            r.iso_frequency_memory_ratio > 3.0 && r.iso_frequency_memory_ratio < 5.0,
            "iso-frequency memory {:.2} (paper 4.3)",
            r.iso_frequency_memory_ratio
        );
        assert_eq!(r.bars.len(), 8);
    }

    #[test]
    fn fig6a_sweep_covers_paper_grid() {
        let pts = fig6a();
        assert_eq!(pts.len(), 24);
        let min = pts
            .iter()
            .map(|p| p.kge)
            .fold(f64::INFINITY, f64::min);
        assert!((min - 7.0).abs() < 0.1, "minimal config ~7 kGE");
    }

    #[test]
    fn instant_actions_add_negligible_power() {
        // Paper Section IV-B: "We present power estimations for sequenced
        // actions, as instant actions introduce negligible dynamic
        // power." Verify on the minimal mediation programs: the power
        // attributable to the link running pure instant actions is a
        // sub-percent sliver of the SoC's active power, and well under
        // the sequenced flavour's link share (which pays two bus
        // transactions per event).
        // Action-attributable power = the link's dynamic power in the
        // active window minus its always-on clock load (its idle dynamic).
        let link_share = |mediator| {
            let r = Scenario::latency_probe(mediator).run();
            let m = r.power_model();
            let active = r.active_power(&m);
            let idle = r.idle_power(&m);
            let link = active
                .component("pels.link0")
                .expect("link present")
                .dynamic
                .as_uw()
                - idle
                    .component("pels.link0")
                    .expect("link present")
                    .dynamic
                    .as_uw();
            (link, active.total().as_uw())
        };
        let (instant_link, total) = link_share(Mediator::PelsInstant);
        let (sequenced_link, _) = link_share(Mediator::PelsSequenced);
        assert!(
            instant_link / total < 0.025,
            "instant-action link power {instant_link:.2} uW is {:.2}% of {total:.0} uW",
            100.0 * instant_link / total
        );
        assert!(
            instant_link < sequenced_link,
            "instant {instant_link:.2} uW vs sequenced {sequenced_link:.2} uW"
        );
    }

    #[test]
    fn link_power_extension_is_monotone() {
        let pts = extension_link_power();
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            assert!(
                w[1].idle_uw > w[0].idle_uw,
                "every link adds clock load: {:?}",
                pts
            );
        }
        // Each link costs ~28 uW of always-on clock load at 55 MHz; 8
        // links add ~28% to the idle floor — the real integration cost
        // behind Figure 6a's area curve.
        let ratio = pts[7].idle_uw / pts[0].idle_uw;
        assert!(ratio > 1.15 && ratio < 1.45, "ratio {ratio:.2}");
    }

    #[test]
    fn renders_are_nonempty() {
        assert!(render_fig6a().contains("Ibex"));
        assert!(render_fig6b().contains("PELS share"));
    }
}
