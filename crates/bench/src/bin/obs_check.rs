//! Schema gate for the observability artifacts.
//!
//! ```text
//! cargo run -p pels-bench --bin obs_check --release
//! ```
//!
//! Validates `OBS_metrics.json` (a flat object of non-negative integer
//! counters, with the decode-cache, scheduler, superblock/fusion and
//! fleet-worker keys present and nonzero), `OBS_trace.json` (well-formed
//! Chrome trace-event JSON that must include `"ph": "C"` power counter
//! tracks and `"ph": "s"`/`"f"` causal flow arrows),
//! `OBS_timeline.json` (at least one window, monotone contiguous
//! window timestamps, non-negative per-component power),
//! `OBS_flows.json` (per-mediator sections with complete flows, an
//! exemplar hop chain with monotone timestamps, and every stage drawn
//! from the [`pels_sim::FLOW_STAGES`] allowlist) and
//! `BENCH_lifetime.json` (battery parameters, a positive PELS-vs-IRQ
//! headline projection, non-empty sweep rows with positive mean draw
//! and a 16-hex-digit fleet digest).
//! `scripts/bench_smoke.sh` runs this after
//! `reproduce -- sim_throughput lifetime --quick --obs`, so any drift
//! in the exporters fails the tier-1 verify pass instead of silently
//! shipping broken artifacts.

use pels_obs::json::{self, Value};
use std::process::ExitCode;

/// Counters the reference `--obs` workload must drive to a nonzero
/// value: a zero here means the busy-CPU scenario, the fused spin loop
/// or the fleet pass no longer exercises that layer.
const NONZERO_KEYS: &[&str] = &[
    "cpu.cycles",
    "cpu.retired",
    "cpu.decode_cache.hits",
    "cpu.decode_cache.misses",
    "cpu.superblock.runs",
    "cpu.superblock.instrs",
    "cpu.fused.ops",
    "cpu.fused.pairs",
    "soc.sched.rebuilds",
    "soc.sched.sleeps",
    "soc.sprint.spans",
    "fleet.jobs",
    "fleet.workers",
    "fleet.worker0.jobs",
    "power.energy.total_nj",
    "power.energy.span_us",
    "power.energy.windows",
    "power.energy.components",
    "battery.days_milli",
    "battery.mean_draw_nw",
    "battery.usable_mj",
    "battery.soc_points",
];

/// Every counter the energy ledger and battery projection publishers
/// may emit, by exact name — the schema side of
/// `EnergyLedger::metric_pairs` and `LifetimeReport::metric_pairs`. A
/// `power.energy.`- or `battery.`-prefixed key not listed here fails
/// the gate, same drift contract as [`KNOWN_CPU_SCHED_KEYS`].
const KNOWN_ENERGY_KEYS: &[&str] = &[
    "power.energy.total_nj",
    "power.energy.floor_nj",
    "power.energy.span_us",
    "power.energy.windows",
    "power.energy.components",
    "battery.days_milli",
    "battery.mean_draw_nw",
    "battery.usable_mj",
    "battery.soc_points",
];

/// Every counter the CPU and scheduler publishers may emit, by exact
/// name — the schema side of `Cpu::publish_metrics` and
/// `Soc::publish_metrics`. A `cpu.`-, `soc.sched.`- or
/// `soc.sprint.`-prefixed key in the
/// snapshot that is not listed here fails the gate: that is how producer
/// renames and silent additions get caught as drift instead of shipping
/// two names for one counter. Extend this list in the same change that
/// adds or renames a published counter.
const KNOWN_CPU_SCHED_KEYS: &[&str] = &[
    "cpu.cycles",
    "cpu.retired",
    "cpu.fetches",
    "cpu.decode_cache.hits",
    "cpu.decode_cache.misses",
    "cpu.irq.entries",
    "cpu.irq.overhead_cycles",
    "cpu.sleep_cycles",
    "cpu.stall_cycles",
    "cpu.superblock.blocks_built",
    "cpu.superblock.runs",
    "cpu.superblock.instrs",
    "cpu.superblock.cycles",
    "cpu.superblock.verify_aborts",
    "cpu.fused.ops",
    "cpu.fused.pairs",
    "soc.sched.fast_cycles",
    "soc.sched.stirred_cycles",
    "soc.sched.naive_cycles",
    "soc.sched.skip_spans",
    "soc.sched.skipped_cycles",
    "soc.sched.rebuilds",
    "soc.sched.wakes",
    "soc.sched.sleeps",
    "soc.sprint.spans",
    "soc.sprint.proofs",
    "soc.sprint.token_hits",
    "soc.sprint.invalidations",
];

fn check_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| format!("{path}: top level must be an object"))?;
    if obj.is_empty() {
        return Err(format!("{path}: empty metrics snapshot"));
    }
    for (key, value) in obj {
        value
            .as_u64()
            .ok_or_else(|| format!("{path}: `{key}` is not a non-negative integer"))?;
        if (key.starts_with("cpu.")
            || key.starts_with("soc.sched.")
            || key.starts_with("soc.sprint."))
            && !KNOWN_CPU_SCHED_KEYS.contains(&key.as_str())
        {
            return Err(format!(
                "{path}: counter `{key}` is not in the published schema — \
                 a producer renamed or added a `cpu.`/`soc.sched.`/`soc.sprint.` \
                 counter without updating KNOWN_CPU_SCHED_KEYS"
            ));
        }
        if (key.starts_with("power.energy.") || key.starts_with("battery."))
            && !KNOWN_ENERGY_KEYS.contains(&key.as_str())
        {
            return Err(format!(
                "{path}: counter `{key}` is not in the published schema — \
                 a producer renamed or added a `power.energy.`/`battery.` \
                 counter without updating KNOWN_ENERGY_KEYS"
            ));
        }
    }
    for key in NONZERO_KEYS {
        match doc.get(key).and_then(Value::as_u64) {
            None => return Err(format!("{path}: required counter `{key}` is missing")),
            Some(0) => {
                return Err(format!(
                    "{path}: counter `{key}` is zero — the reference workload \
                     no longer exercises it"
                ))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

fn check_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    pels_obs::chrome::validate(&text).map_err(|e| format!("{path}: {e}"))?;
    // The timeline exporter must have contributed counter tracks —
    // a trace of only instant events means the power-over-time view
    // silently disappeared from the artifact.
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let counters = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .map(|events| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
                .count()
        })
        .unwrap_or(0);
    if counters == 0 {
        return Err(format!(
            "{path}: no `\"ph\": \"C\"` counter events — the power timeline \
             is missing from the trace"
        ));
    }
    // The flow probes must have contributed causal arrows; `validate`
    // above already proved every start has a matching finish and every
    // flow event binds to an anchor slice, so presence is all that is
    // left to gate.
    let flows = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .map(|events| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("s"))
                .count()
        })
        .unwrap_or(0);
    if flows == 0 {
        return Err(format!(
            "{path}: no `\"ph\": \"s\"` flow events — the causal flow \
             arrows are missing from the trace"
        ));
    }
    // The battery projection must have contributed its state-of-charge
    // counter track alongside the power tracks.
    let soc = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .map(|events| {
            events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("C")
                        && e.get("name")
                            .and_then(Value::as_str)
                            .is_some_and(|n| n.starts_with("battery_soc"))
                })
                .count()
        })
        .unwrap_or(0);
    if soc == 0 {
        return Err(format!(
            "{path}: no `battery_soc` counter events — the state-of-charge \
             track is missing from the trace"
        ));
    }
    Ok(())
}

/// Validates `BENCH_lifetime.json`: battery parameters, a positive
/// finite PELS-vs-IRQ headline, non-empty sweep rows (each with a
/// label, mediator, duty-cycle point, positive mean draw and a positive
/// or null lifetime) and the 16-hex-digit fleet digest.
fn check_lifetime(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema_version").and_then(Value::as_u64) != Some(1) {
        return Err(format!("{path}: missing `schema_version` 1"));
    }
    let battery = doc
        .get("battery")
        .ok_or_else(|| format!("{path}: missing `battery` object"))?;
    for field in ["capacity_mah", "nominal_v", "rate_exponent", "cutoff_fraction"] {
        let v = battery
            .get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric `battery.{field}`"))?;
        if v <= 0.0 {
            return Err(format!("{path}: `battery.{field}` = {v} is not positive"));
        }
    }
    let headline = doc
        .get("headline")
        .ok_or_else(|| format!("{path}: missing `headline` object"))?;
    for field in [
        "sample_period_us",
        "horizon_ms",
        "pels_days",
        "irq_days",
        "lifetime_ratio",
        "pels_mean_uw",
        "irq_mean_uw",
    ] {
        let v = headline
            .get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric `headline.{field}`"))?;
        if v <= 0.0 {
            return Err(format!("{path}: `headline.{field}` = {v} is not positive"));
        }
    }
    let sweep = doc
        .get("sweep")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: missing `sweep` array"))?;
    if sweep.is_empty() {
        return Err(format!("{path}: sweep has no rows"));
    }
    for (i, row) in sweep.iter().enumerate() {
        let ctx = |msg: &str| format!("{path}: sweep row {i}: {msg}");
        for field in ["label", "mediator"] {
            row.get(field)
                .and_then(Value::as_str)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| ctx(&format!("missing non-empty string `{field}`")))?;
        }
        for field in ["sample_period_us", "spi_words", "mean_uw"] {
            let v = row
                .get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| ctx(&format!("missing numeric `{field}`")))?;
            if v <= 0.0 {
                return Err(ctx(&format!("`{field}` = {v} is not positive")));
            }
        }
        // `days` is null for a zero-draw projection, positive otherwise.
        match row.get("days") {
            Some(Value::Null) => {}
            Some(v) if v.as_f64().is_some_and(|d| d > 0.0) => {}
            _ => return Err(ctx("`days` must be positive or null")),
        }
    }
    let digest = doc
        .get("digest")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: missing string `digest`"))?;
    if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("{path}: digest `{digest}` is not 16 hex digits"));
    }
    Ok(())
}

/// Validates `OBS_flows.json`: every per-mediator section must carry a
/// non-empty flow report whose stage labels end in allowlisted stages,
/// and an exemplar hop chain with monotone timestamps and allowlisted
/// typed stages.
fn check_flows(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| format!("{path}: top level must be an object"))?;
    let stage_ok = |stage: &str| pels_sim::FLOW_STAGES.contains(&stage);
    let mut sections = 0usize;
    for (name, section) in obj {
        if name == "schema_version" {
            continue;
        }
        sections += 1;
        let ctx = |msg: &str| format!("{path}: section `{name}`: {msg}");
        section
            .get("freq_mhz")
            .and_then(Value::as_f64)
            .ok_or_else(|| ctx("missing numeric `freq_mhz`"))?;
        let report = section
            .get("report")
            .ok_or_else(|| ctx("missing `report` object"))?;
        match report.get("flows").and_then(Value::as_u64) {
            None => return Err(ctx("missing integer `report.flows`")),
            Some(0) => return Err(ctx("report has no complete flows")),
            Some(_) => {}
        }
        let stages = report
            .get("stages")
            .and_then(Value::as_object)
            .ok_or_else(|| ctx("missing `report.stages` object"))?;
        if stages.is_empty() {
            return Err(ctx("report attributes no stages"));
        }
        for (label, _) in stages {
            // Attribution labels are `<component>.<stage>`; the typed
            // stage is the suffix after the last dot.
            let stage = label.rsplit('.').next().unwrap_or(label);
            if !stage_ok(stage) {
                return Err(ctx(&format!(
                    "stage label `{label}` ends in `{stage}`, which is \
                     not in the FLOW_STAGES allowlist"
                )));
            }
        }
        let hops = section
            .get("exemplar_hops")
            .and_then(Value::as_array)
            .ok_or_else(|| ctx("missing `exemplar_hops` array"))?;
        if hops.is_empty() {
            return Err(ctx("exemplar hop chain is empty"));
        }
        let mut prev_ps: Option<u64> = None;
        for (i, hop) in hops.iter().enumerate() {
            let hctx = |msg: &str| ctx(&format!("hop {i}: {msg}"));
            let t_ps = hop
                .get("t_ps")
                .and_then(Value::as_u64)
                .ok_or_else(|| hctx("missing integer `t_ps`"))?;
            if prev_ps.is_some_and(|prev| t_ps < prev) {
                return Err(hctx("hop timestamps are not monotone"));
            }
            prev_ps = Some(t_ps);
            hop.get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| hctx("missing string `source`"))?;
            let stage = hop
                .get("stage")
                .and_then(Value::as_str)
                .ok_or_else(|| hctx("missing string `stage`"))?;
            if !stage_ok(stage) {
                return Err(hctx(&format!(
                    "stage `{stage}` is not in the FLOW_STAGES allowlist"
                )));
            }
        }
    }
    if sections == 0 {
        return Err(format!("{path}: no per-mediator sections"));
    }
    Ok(())
}

fn check_timeline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    for field in ["schema_version", "freq_mhz", "window_cycles"] {
        doc.get(field)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric `{field}`"))?;
    }
    let windows = doc
        .get("windows")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: missing `windows` array"))?;
    if windows.is_empty() {
        return Err(format!("{path}: timeline has no windows"));
    }
    let mut prev_end: Option<u64> = None;
    for (i, w) in windows.iter().enumerate() {
        let ctx = |msg: &str| format!("{path}: window {i}: {msg}");
        let cycle = |field: &str| {
            w.get(field)
                .and_then(Value::as_u64)
                .ok_or_else(|| ctx(&format!("missing integer `{field}`")))
        };
        let (start, end) = (cycle("start_cycle")?, cycle("end_cycle")?);
        if end <= start {
            return Err(ctx("window span is empty or reversed"));
        }
        if let Some(prev) = prev_end {
            if start != prev {
                return Err(ctx("window timestamps are not contiguous/monotone"));
            }
        }
        prev_end = Some(end);
        for field in ["start_ns", "end_ns", "total_uw"] {
            w.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| ctx(&format!("missing numeric `{field}`")))?;
        }
        let components = w
            .get("components")
            .and_then(Value::as_object)
            .ok_or_else(|| ctx("missing `components` object"))?;
        if components.is_empty() {
            return Err(ctx("window has no component breakdown"));
        }
        for (name, uw) in components {
            let uw = uw
                .as_f64()
                .ok_or_else(|| ctx(&format!("component `{name}` power is not numeric")))?;
            if uw < 0.0 {
                return Err(ctx(&format!("component `{name}` power {uw} is negative")));
            }
        }
    }
    Ok(())
}

type Check = fn(&str) -> Result<(), String>;

fn main() -> ExitCode {
    let checks: [(&str, Check); 5] = [
        ("OBS_metrics.json", check_metrics),
        ("OBS_trace.json", check_trace),
        ("OBS_timeline.json", check_timeline),
        ("OBS_flows.json", check_flows),
        ("BENCH_lifetime.json", check_lifetime),
    ];
    let mut ok = true;
    for (path, check) in checks {
        match check(path) {
            Ok(()) => println!("obs_check: {path} OK"),
            Err(e) => {
                eprintln!("obs_check: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
