//! Schema gate for the observability artifacts.
//!
//! ```text
//! cargo run -p pels-bench --bin obs_check --release
//! ```
//!
//! Validates `OBS_metrics.json` (a flat object of non-negative integer
//! counters, with the decode-cache, scheduler and fleet-worker keys
//! present and nonzero) and `OBS_trace.json` (well-formed Chrome
//! trace-event JSON). `scripts/bench_smoke.sh` runs this after
//! `reproduce -- sim_throughput --obs`, so any drift in the exporters
//! fails the tier-1 verify pass instead of silently shipping broken
//! artifacts.

use pels_obs::json::{self, Value};
use std::process::ExitCode;

/// Counters the reference `--obs` workload must drive to a nonzero
/// value: a zero here means the busy-CPU scenario or the fleet pass no
/// longer exercises that layer.
const NONZERO_KEYS: &[&str] = &[
    "cpu.cycles",
    "cpu.retired",
    "cpu.decode_cache.hits",
    "cpu.decode_cache.misses",
    "soc.sched.rebuilds",
    "soc.sched.sleeps",
    "fleet.jobs",
    "fleet.workers",
    "fleet.worker0.jobs",
];

fn check_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| format!("{path}: top level must be an object"))?;
    if obj.is_empty() {
        return Err(format!("{path}: empty metrics snapshot"));
    }
    for (key, value) in obj {
        value
            .as_u64()
            .ok_or_else(|| format!("{path}: `{key}` is not a non-negative integer"))?;
    }
    for key in NONZERO_KEYS {
        match doc.get(key).and_then(Value::as_u64) {
            None => return Err(format!("{path}: required counter `{key}` is missing")),
            Some(0) => {
                return Err(format!(
                    "{path}: counter `{key}` is zero — the reference workload \
                     no longer exercises it"
                ))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

fn check_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    pels_obs::chrome::validate(&text).map_err(|e| format!("{path}: {e}"))
}

type Check = fn(&str) -> Result<(), String>;

fn main() -> ExitCode {
    let checks: [(&str, Check); 2] = [
        ("OBS_metrics.json", check_metrics),
        ("OBS_trace.json", check_trace),
    ];
    let mut ok = true;
    for (path, check) in checks {
        match check(path) {
            Ok(()) => println!("obs_check: {path} OK"),
            Err(e) => {
                eprintln!("obs_check: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
