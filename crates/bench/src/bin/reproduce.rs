//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p pels-bench --bin reproduce --release            # everything
//! cargo run -p pels-bench --bin reproduce -- table1 fig5      # a subset
//! ```
//!
//! Artifacts: `table1`, `fig3`, `fig5`, `latency`, `fig6a`, `fig6b`,
//! `ablations`, `extensions`, `sim_throughput` (which additionally
//! writes `BENCH_sim_throughput.json` so the simulator's own speed is
//! tracked across PRs).

use pels_bench::{ablations, experiments, sota, throughput};
use std::process::ExitCode;

const ALL: &[&str] = &[
    "table1",
    "fig3",
    "latency",
    "fig5",
    "fig6a",
    "fig6b",
    "ablations",
    "extensions",
    "sim_throughput",
];

fn run_one(artifact: &str) -> Result<(), String> {
    let text = match artifact {
        "table1" => {
            let mut s = String::from(
                "Table I - autonomous peripheral-event handling systems\n",
            );
            s.push_str(&sota::render_table1());
            s
        }
        "fig3" => experiments::render_fig3(),
        "latency" => experiments::render_latency(),
        "fig5" => experiments::render_fig5(),
        "fig6a" => experiments::render_fig6a(),
        "fig6b" => experiments::render_fig6b(),
        "ablations" => ablations::render_all(),
        "extensions" => experiments::render_extension_link_power(),
        "sim_throughput" => {
            let rows = throughput::measure(10);
            let json = throughput::to_json(&rows);
            std::fs::write("BENCH_sim_throughput.json", &json)
                .map_err(|e| format!("writing BENCH_sim_throughput.json: {e}"))?;
            format!("{}(wrote BENCH_sim_throughput.json)\n", throughput::render(&rows))
        }
        other => return Err(format!("unknown artifact `{other}` (expected one of {ALL:?})")),
    };
    println!("================================================================");
    println!("{text}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for artifact in selected {
        if let Err(e) = run_one(artifact) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
