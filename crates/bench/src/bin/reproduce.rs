//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p pels-bench --bin reproduce --release            # everything
//! cargo run -p pels-bench --bin reproduce -- table1 fig5      # a subset
//! ```
//!
//! Artifacts: `table1`, `fig3`, `fig5`, `latency`, `fig6a`, `fig6b`,
//! `ablations`, `extensions`, `sim_throughput` (which additionally
//! writes `BENCH_sim_throughput.json` so the simulator's own speed is
//! tracked across PRs), `fleet` (which runs a reference sweep on 1
//! worker and on all available workers, checks the two reports are
//! bit-identical, and writes `BENCH_fleet_throughput.json`), `desc`
//! (which regenerates the canonical system/scenario description corpus
//! under `examples/descs/`, gated by the `desc_check` binary), and
//! `lifetime` (which duty-cycles a sensor node over hours of simulated
//! time, projects coin-cell battery lifetime for PELS vs the interrupt
//! baseline, sweeps duty cycle × sensor payload × mediator across a
//! fleet, and writes `BENCH_lifetime.json` — schema-gated by
//! `obs_check`). The `--quick` flag shrinks the `lifetime` horizon for
//! smoke runs.
//!
//! The `--obs` flag (combinable with any artifact subset) enables the
//! host-time span profiler for the whole run and appends an
//! observability pass: a busy-CPU scenario (with windowed activity
//! sampling) plus a small fleet, exported as `OBS_metrics.json` (flat
//! counter snapshot), `OBS_trace.json` (Chrome trace-event JSON with
//! instant events, host spans and per-component power counter tracks,
//! loadable in Perfetto / `chrome://tracing`) and `OBS_timeline.json`
//! (the per-window per-component power timeline). The pass also prints
//! the power-over-time sparkline and the latency histogram, so the
//! terminal alone shows the shape of the run. `obs_check` gates all
//! three files' schemas in `scripts/bench_smoke.sh`.

use pels_bench::{ablations, experiments, sota, throughput};
use pels_desc::{DescFuzzer, FuzzCase};
use pels_fleet::{report as fleet_report, FleetEngine, SweepSpec};
use pels_interconnect::{ArbiterKind, Topology};
use pels_power::{Battery, EnergyLedger};
use pels_sim::SimTime;
use pels_soc::{Mediator, Scenario, ScenarioDesc, SensorKind, SystemDesc};
use std::process::ExitCode;

const ALL: &[&str] = &[
    "table1",
    "fig3",
    "latency",
    "fig5",
    "fig6a",
    "fig6b",
    "ablations",
    "extensions",
    "sim_throughput",
    "fleet",
    "desc",
    "lifetime",
];

/// The reference 8-job sweep for the fleet artifact: 2 mediators × 2
/// frequencies × 2 link counts.
fn fleet_reference_spec() -> SweepSpec {
    SweepSpec::new()
        .mediators(&[Mediator::PelsSequenced, Mediator::PelsInstant])
        .freqs_mhz(&[27.0, 55.0])
        .links(&[1, 4])
}

fn run_fleet_artifact() -> Result<String, String> {
    let spec = fleet_reference_spec();
    let serial = FleetEngine::new(1)
        .run_sweep(&spec)
        .map_err(|e| format!("fleet sweep invalid: {e}"))?;
    let parallel = FleetEngine::auto()
        .run_sweep(&spec)
        .map_err(|e| format!("fleet sweep invalid: {e}"))?;
    if serial.digest() != parallel.digest() {
        return Err(format!(
            "fleet determinism violated: 1-worker digest {:016x} != {}-worker digest {:016x}",
            serial.digest(),
            parallel.workers,
            parallel.digest()
        ));
    }
    let host = pels_fleet::engine::host_parallelism();
    let json = fleet_report::to_json(&parallel, host);
    std::fs::write("BENCH_fleet_throughput.json", &json)
        .map_err(|e| format!("writing BENCH_fleet_throughput.json: {e}"))?;
    Ok(format!(
        "Fleet - parallel scenario sweep (8-job reference batch)\n{}\n\
         digest {:016x} identical on 1 and {} worker(s) (host parallelism: {host})\n\
         serial wall {:.1} ms -> parallel wall {:.1} ms\n\
         (wrote BENCH_fleet_throughput.json)\n",
        parallel.render(),
        parallel.digest(),
        parallel.workers,
        serial.wall.as_secs_f64() * 1e3,
        parallel.wall.as_secs_f64() * 1e3,
    ))
}

/// Serializes the lifetime artifact as `BENCH_lifetime.json`: the
/// battery parameters, the headline duty-cycled PELS-vs-IRQ projection
/// and the per-job sweep rows. `obs_check` schema-gates this file.
fn lifetime_to_json(
    quick: bool,
    battery: &Battery,
    period: SimTime,
    horizon: SimTime,
    pels: &pels_power::LifetimeReport,
    irq: &pels_power::LifetimeReport,
    fleet: &pels_fleet::FleetReport,
) -> String {
    use std::fmt::Write as _;
    let days = |r: &pels_power::LifetimeReport| {
        if r.seconds.is_finite() {
            r.days().to_string()
        } else {
            "null".to_string()
        }
    };
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(
        s,
        "  \"battery\": {{\"capacity_mah\": {}, \"nominal_v\": {}, \
         \"rate_exponent\": {}, \"sleep_floor_uw\": {}, \"cutoff_fraction\": {}}},",
        battery.capacity_mah,
        battery.nominal_v,
        battery.rate_exponent,
        battery.sleep_floor_uw,
        battery.cutoff_fraction,
    );
    let _ = writeln!(
        s,
        "  \"headline\": {{\"sample_period_us\": {}, \"horizon_ms\": {}, \
         \"pels_days\": {}, \"irq_days\": {}, \"lifetime_ratio\": {}, \
         \"pels_mean_uw\": {}, \"irq_mean_uw\": {}}},",
        period.as_us_f64(),
        horizon.as_us_f64() / 1e3,
        days(pels),
        days(irq),
        pels.seconds / irq.seconds,
        pels.mean_draw_uw,
        irq.mean_draw_uw,
    );
    s.push_str("  \"sweep\": [");
    let rows: Vec<_> = fleet.succeeded().collect();
    for (i, (label, o)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let ledger = o.report.energy.as_ref().expect("lifetime(true) ledger");
        let projection = o.report.lifetime.as_ref().expect("lifetime(true) projection");
        let _ = write!(
            s,
            "\n    {{\"label\": \"{}\", \"mediator\": \"{}\", \
             \"sample_period_us\": {}, \"spi_words\": {}, \"mean_uw\": {}, \"days\": {}}}{sep}",
            pels_obs::json::escape(label),
            o.scenario.desc().mediator,
            o.scenario.desc().sample_period.as_us_f64(),
            o.scenario.desc().spi_words,
            ledger.mean_power().as_uw(),
            days(projection),
        );
    }
    s.push_str("\n  ],\n");
    let _ = writeln!(s, "  \"digest\": \"{:016x}\"", fleet.digest());
    s.push_str("}\n");
    s
}

/// The `lifetime` artifact: how long does the node last on a coin cell?
///
/// Runs the duty-cycled preset (sleep → sense → burst every sample
/// period) for PELS-sequenced mediation and the interrupt baseline over
/// a long simulated horizon, projects both onto [`Battery::coin_cell`],
/// then sweeps duty cycle (sample period) × sensor payload (SPI words)
/// × mediator across a fleet with the energy ledger switched on.
/// Quiescence skipping makes the sleep stretches nearly free, so hours
/// of device time integrate in seconds of host time. `--quick` shrinks
/// the horizon for smoke runs.
fn run_lifetime_artifact(quick: bool) -> Result<String, String> {
    // 100 kHz sampling is where mediation energy is visible over the
    // static leakage floor: the interrupt baseline wakes the core every
    // 10 µs, PELS keeps it asleep, and the gap is worth ~2 days of
    // coin cell. Longer periods amortize toward the leakage-only floor
    // (the sweep below covers that regime).
    let period = SimTime::from_us(10);
    let horizon = if quick {
        SimTime::from_ms(50)
    } else {
        SimTime::from_ms(1_000)
    };
    let project = |m: Mediator| -> Result<pels_power::LifetimeReport, String> {
        let report = Scenario::duty_cycled(m, period, horizon)
            .try_run()
            .map_err(|e| format!("lifetime scenario ({m:?}) failed: {e}"))?;
        report
            .lifetime
            .ok_or_else(|| format!("lifetime scenario ({m:?}) produced no projection"))
    };
    let pels = project(Mediator::PelsSequenced)?;
    let irq = project(Mediator::IbexIrq)?;

    // Duty cycle × sensor payload × mediator, ledger on for every job.
    let periods_us: &[u64] = if quick { &[100, 500] } else { &[10, 100, 1_000] };
    let spec = SweepSpec::new()
        .mediators(&[Mediator::PelsSequenced, Mediator::IbexIrq])
        .sample_periods_us(periods_us)
        .spi_word_counts(&[1, 4])
        .lifetime(true);
    let fleet = FleetEngine::auto()
        .run_sweep(&spec)
        .map_err(|e| format!("lifetime sweep invalid: {e}"))?;
    if let Some((label, e)) = fleet.failed().next() {
        return Err(format!("lifetime sweep job `{label}` failed: {e}"));
    }

    let battery = Battery::coin_cell();
    std::fs::write(
        "BENCH_lifetime.json",
        lifetime_to_json(quick, &battery, period, horizon, &pels, &irq, &fleet),
    )
    .map_err(|e| format!("writing BENCH_lifetime.json: {e}"))?;

    let mut sweep_table = String::new();
    for (label, o) in fleet.succeeded() {
        let projection = o.report.lifetime.as_ref().expect("lifetime(true) projection");
        sweep_table.push_str(&format!(
            "  {label:<44}  {:>9.1} days\n",
            projection.days()
        ));
    }
    Ok(format!(
        "Lifetime - days-of-battery projection ({} duty periods over {:.1} s)\n\
         PELS-sequenced node:\n{}\
         Ibex interrupt baseline:\n{}\
         PELS outlasts the baseline {:.2}x on the same cell\n\
         duty cycle x payload x mediator sweep ({} jobs):\n{}\
         (wrote BENCH_lifetime.json)\n",
        (horizon.as_ps() / period.as_ps()),
        horizon.as_secs_f64(),
        pels.render(),
        irq.render(),
        pels.seconds / irq.seconds,
        fleet.jobs.len(),
        sweep_table,
    ))
}

/// Nominal sampling window (cycles) for the `--obs` pass's activity
/// timeline: ~20 windows over the reference run — coarse enough to stay
/// readable in a terminal sparkline, fine enough to resolve the
/// per-readout power bursts.
const OBS_TIMELINE_WINDOW: u64 = 64;

/// Serializes the power timeline as the flat `OBS_timeline.json`
/// artifact: per window, the cycle/ns span, the total power and the
/// per-component breakdown. `obs_check` schema-gates this file.
fn timeline_to_json(
    report: &pels_soc::ScenarioReport,
    power: &pels_power::PowerTimeline,
) -> String {
    use std::fmt::Write as _;
    let timeline = report.timeline.as_ref().expect("timeline sampled");
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"freq_mhz\": {},", report.freq.as_mhz());
    let _ = writeln!(s, "  \"window_cycles\": {},", timeline.window_cycles);
    let _ = writeln!(s, "  \"mean_total_uw\": {},", power.mean_total_uw());
    s.push_str("  \"windows\": [");
    let n = timeline.windows.len().min(power.samples.len());
    for i in 0..n {
        let (w, p) = (&timeline.windows[i], &power.samples[i]);
        let sep = if i + 1 < n { "," } else { "" };
        let _ = write!(
            s,
            "\n    {{\"start_cycle\": {}, \"end_cycle\": {}, \"start_ns\": {}, \
             \"end_ns\": {}, \"total_uw\": {}, \"components\": {{",
            w.start_cycle,
            w.end_cycle,
            p.start.as_ns(),
            p.end.as_ns(),
            p.total_uw,
        );
        for (j, (name, uw)) in p.components.iter().enumerate() {
            let csep = if j + 1 < p.components.len() { ", " } else { "" };
            let _ = write!(s, "\"{}\": {uw}{csep}", pels_obs::json::escape(name));
        }
        let _ = write!(s, "}}}}{sep}");
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Serializes the three per-mediator flow decompositions as
/// `OBS_flows.json`: per section the [`pels_obs::FlowReport`] object
/// plus the exemplar hop chain of its first complete flow (timestamps,
/// sources, typed stages). `obs_check` gates non-emptiness, hop-time
/// monotonicity and the stage allowlist against this file.
fn flows_to_json(sections: &[(&str, &pels_soc::ScenarioReport)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    for (i, (name, report)) in sections.iter().enumerate() {
        let fr = report.flow_report().expect("flows recorded");
        let flows = report.flows.as_ref().expect("flows recorded");
        let sep = if i + 1 < sections.len() { "," } else { "" };
        let _ = writeln!(s, "  \"{name}\": {{");
        let _ = writeln!(s, "    \"freq_mhz\": {},", report.freq.as_mhz());
        let _ = writeln!(s, "    \"report\": {},", fr.to_json());
        s.push_str("    \"exemplar_hops\": [");
        let exemplar = flows
            .flow_ids()
            .into_iter()
            .find(|&id| flows.hops_of(id).any(|h| h.stage == fr.terminal()));
        if let Some(id) = exemplar {
            let hops: Vec<_> = flows.hops_of(id).collect();
            for (j, h) in hops.iter().enumerate() {
                let hsep = if j + 1 < hops.len() { "," } else { "" };
                let _ = write!(
                    s,
                    "\n      {{\"t_ps\": {}, \"source\": \"{}\", \"stage\": \"{}\"}}{hsep}",
                    h.time.as_ps(),
                    pels_obs::json::escape(h.source_name()),
                    pels_obs::json::escape(h.stage),
                );
            }
        }
        let _ = writeln!(s, "\n    ]\n  }}{sep}");
    }
    s.push_str("}\n");
    s
}

/// The `--obs` pass: runs a busy-CPU scenario (activity timeline
/// sampled every [`OBS_TIMELINE_WINDOW`] cycles), a fused-superblock
/// spin workload and a small fleet with full metrics collection, plus
/// the three flow-traced latency probes. Exports the merged counter
/// snapshot, the Chrome trace (simulated-time events + flow arrows +
/// host-time spans + power counter tracks), the power timeline and the
/// per-stage flow decomposition, and renders the latency histogram,
/// power sparkline and PELS-vs-IRQ blame tables inline.
fn run_obs_artifact() -> Result<String, String> {
    // The profiler was enabled in `main` before any artifact ran; start
    // the event buffer from a clean slate so the exported trace covers
    // exactly this pass.
    pels_obs::profile::reset();
    let mut reg = pels_obs::MetricsRegistry::new();

    // Busy-CPU workload: the interrupt path keeps the core fetching, so
    // the decode cache, the scheduler and the fabric all engage.
    let scenario = Scenario::iso_frequency(Mediator::IbexIrq)
        .to_builder()
        .obs(true)
        .timeline_window(OBS_TIMELINE_WINDOW)
        .build()
        .map_err(|e| format!("obs scenario invalid: {e}"))?;
    let report = scenario
        .try_run()
        .map_err(|e| format!("obs scenario failed: {e}"))?;
    reg.absorb(report.metrics.as_ref().expect("obs(true) snapshot"));

    // Busy-linking fused workload: the interrupt handler alone retires
    // too few straight-line ALU ops for the superblock and fusion tiers
    // to engage, so those counters would vanish from the snapshot (zero
    // values are filtered). A spinning fusible loop — `lui+addi` and an
    // ALU-immediate chain through one live destination — drives
    // `cpu.superblock.*`, `cpu.fused.*` and `soc.sprint.*` to honest
    // nonzero values.
    {
        use pels_cpu::asm;
        let mut soc = pels_soc::SocBuilder::new().build();
        soc.load_program(
            pels_soc::mem_map::RESET_PC,
            &[
                asm::lui(1, 0x1234_5000),
                asm::addi(1, 1, 0x678),
                asm::addi(2, 2, 1),
                asm::addi(2, 2, 1),
                asm::jal(0, -16),
            ],
        );
        let _span = pels_obs::profile::span("obs.fused_spin");
        soc.run(4096);
        // Publish into a private registry and absorb the (zero-filtered)
        // snapshot: `publish_metrics` has set semantics, so publishing
        // straight into `reg` would overwrite the scenario's counters
        // with this workload's (including zeros for layers it never
        // touches, e.g. the scheduler's sleep counter).
        let mut spin_reg = pels_obs::MetricsRegistry::new();
        soc.publish_metrics(&mut spin_reg);
        reg.absorb(&spin_reg.snapshot());
    }

    // A small fleet on one worker — single-worker attribution is
    // deterministic, so `fleet.worker0.jobs` is reliably nonzero for the
    // obs_check schema gate.
    let fleet = FleetEngine::new(1)
        .run_sweep(&SweepSpec::new().mediators(&[Mediator::PelsSequenced, Mediator::IbexIrq]))
        .map_err(|e| format!("obs fleet sweep invalid: {e}"))?;
    fleet.publish_metrics(&mut reg);

    // Flow-traced latency probes: one per mediation path. Each records
    // the causal hop chain of every measured event, so the end-to-end
    // latencies the paper reports (7 / 2 / 16 cycles) decompose into a
    // per-stage blame table that sums exactly — see
    // `tests/flow_properties.rs` for the telescoping proof.
    let probe = |m: Mediator| -> Result<pels_soc::ScenarioReport, String> {
        Scenario::latency_probe(m)
            .to_builder()
            .flows(true)
            .build()
            .map_err(|e| format!("flow probe invalid: {e}"))?
            .try_run()
            .map_err(|e| format!("flow probe failed: {e}"))
    };
    let seq = probe(Mediator::PelsSequenced)?;
    let inst = probe(Mediator::PelsInstant)?;
    let irq = probe(Mediator::IbexIrq)?;
    std::fs::write(
        "OBS_flows.json",
        flows_to_json(&[
            ("pels_sequenced", &seq),
            ("pels_instant", &inst),
            ("ibex_irq", &irq),
        ]),
    )
    .map_err(|e| format!("writing OBS_flows.json: {e}"))?;

    // Power over simulated time: the model evaluated once per window.
    let model = report.power_model();
    let power = report
        .power_timeline(&model)
        .expect("timeline_window(>0) samples a timeline");
    if power.is_empty() {
        return Err("obs timeline captured no windows".into());
    }
    std::fs::write("OBS_timeline.json", timeline_to_json(&report, &power))
        .map_err(|e| format!("writing OBS_timeline.json: {e}"))?;

    // Integrate the timeline into the energy ledger and project it onto
    // the reference coin cell, then publish both as `power.energy.*` /
    // `battery.*` counters so the snapshot carries the energy story too.
    let ledger = EnergyLedger::from_timeline(&power);
    let projection = Battery::coin_cell().project(&ledger);
    for (key, value) in ledger
        .metric_pairs()
        .into_iter()
        .chain(projection.metric_pairs())
    {
        reg.set_named(key, value);
    }

    let snap = reg.snapshot();
    std::fs::write("OBS_metrics.json", snap.to_json())
        .map_err(|e| format!("writing OBS_metrics.json: {e}"))?;

    let mut chrome = pels_obs::ChromeTrace::new();
    chrome.add_sim_trace(&report.trace);
    for s in &power.samples {
        let series: Vec<(&str, f64)> = s
            .components
            .iter()
            .map(|(name, uw)| (name.as_str(), *uw))
            .collect();
        chrome.add_counter("power_uw", s.start.as_us_f64(), &series);
        chrome.add_counter("power_total_uw", s.start.as_us_f64(), &[("total", s.total_uw)]);
    }
    // Projected state of charge as its own counter track. The curve
    // spans days while the trace spans microseconds, so the track keeps
    // its own time base — one tick per projected day, named in the
    // track title so the axis is explicit.
    for p in &projection.soc {
        chrome.add_counter("battery_soc (t in days)", p.t_days, &[("fraction", p.fraction)]);
    }
    // Causal flow arrows: the PELS and IRQ probe chains rendered as
    // Perfetto s/t/f flows between per-component anchor slices.
    for probe_report in [&seq, &irq] {
        chrome.add_flow_events(probe_report.flows.as_ref().expect("flows(true) records"));
    }
    chrome.add_host_spans(&pels_obs::profile::take_events());
    let doc = chrome.finish();
    pels_obs::chrome::validate(&doc).map_err(|e| format!("chrome trace invalid: {e}"))?;
    std::fs::write("OBS_trace.json", &doc)
        .map_err(|e| format!("writing OBS_trace.json: {e}"))?;

    Ok(format!(
        "Observability - metrics snapshot, trace export and timeline\n{snap}\n{}\n\
         latency distribution ({} events, p50 {} / p99 {} cycles):\n{}\
         power over simulated time ({} windows of ~{} cycles, mean {:.1} uW):\n  {}\n\
         where the energy goes - per-component blame:\n{}\
         {}\
         where the cycles go - PELS sequenced RMW:\n{}\
         where the cycles go - Ibex interrupt path:\n{}\
         (wrote OBS_metrics.json, OBS_trace.json, OBS_timeline.json, OBS_flows.json)\n",
        pels_obs::profile::report().render(),
        report.latency_hist.count(),
        report.stats.p50,
        report.stats.p99,
        report.latency_hist.render("cycles"),
        power.len(),
        OBS_TIMELINE_WINDOW,
        power.mean_total_uw(),
        pels_obs::hist::sparkline(&power.total_series()),
        ledger.render(),
        projection.render(),
        seq.flow_report().expect("flows recorded").render(),
        irq.flow_report().expect("flows recorded").render(),
    ))
}

/// Fixed seed for the fuzzed slice of the description corpus — the
/// corpus is a committed artifact, so regeneration must be bit-stable.
const DESC_FUZZ_SEED: u64 = 0xDE5C;

/// The `desc` artifact: emits the canonical description corpus under
/// `examples/descs/` — the paper presets, the named example systems and
/// a fixed-seed fuzzed slice. Every emitted document is round-tripped
/// through its own parser before it is written; `desc_check` re-gates
/// the files (parse → validate → smoke run) in `scripts/bench_smoke.sh`.
fn run_desc_artifact() -> Result<String, String> {
    let dir = std::path::Path::new("examples/descs");
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    let mut docs: Vec<(String, String)> = Vec::new();
    let scenario = |name: &str, d: &ScenarioDesc| -> Result<(String, String), String> {
        let json = d.to_json();
        let back = ScenarioDesc::from_json(&json)
            .map_err(|e| format!("{name}: emitted JSON fails to re-parse: {e}"))?;
        if &back != d {
            return Err(format!("{name}: round-trip is not the identity"));
        }
        Ok((format!("{name}.json"), json))
    };
    let system = |name: &str, d: &SystemDesc| -> Result<(String, String), String> {
        let json = d.to_json();
        let back = SystemDesc::from_json(&json)
            .map_err(|e| format!("{name}: emitted JSON fails to re-parse: {e}"))?;
        if &back != d {
            return Err(format!("{name}: round-trip is not the identity"));
        }
        Ok((format!("{name}.json"), json))
    };

    // The paper presets.
    docs.push(scenario("default_scenario", &ScenarioDesc::default())?);
    docs.push(scenario(
        "iso_frequency_irq",
        Scenario::iso_frequency(Mediator::IbexIrq).desc(),
    )?);
    docs.push(scenario(
        "latency_probe_instant",
        Scenario::latency_probe(Mediator::PelsInstant).desc(),
    )?);
    let mut crossbar = ScenarioDesc::default();
    crossbar.system.topology = Topology::PerSlaveCrossbar;
    crossbar.system.arbiter = ArbiterKind::FixedPriority;
    docs.push(scenario("crossbar_fixed_priority", &crossbar)?);

    // The named example systems (system-only documents).
    let mut quickstart = SystemDesc::default();
    quickstart.pels.links = 1;
    quickstart.pels.scm_lines = 4;
    docs.push(system("quickstart_system", &quickstart)?);
    let fusion = SystemDesc {
        sensor: SensorKind::Constant(2.0),
        ..SystemDesc::default()
    };
    docs.push(system("sensor_fusion_system", &fusion)?);

    // A fixed-seed fuzzed slice: the first 6 generated-valid cases.
    let mut fuzzer = DescFuzzer::new(DESC_FUZZ_SEED);
    let mut taken = 0usize;
    while taken < 6 {
        if let FuzzCase::Valid(desc) = fuzzer.next_case() {
            desc.validate()
                .map_err(|e| format!("fuzzed desc {taken} invalid: {e}"))?;
            docs.push(scenario(&format!("fuzz_{taken:02}"), &desc)?);
            taken += 1;
        }
    }

    let mut listing = String::new();
    for (name, json) in &docs {
        let path = dir.join(name);
        std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        listing.push_str(&format!("  {} ({} bytes)\n", path.display(), json.len()));
    }
    Ok(format!(
        "Descriptions - canonical corpus ({} documents, fuzz seed {DESC_FUZZ_SEED:#x})\n{listing}\
         (round-trip checked on emit; `desc_check` gates parse/validate/smoke)\n",
        docs.len(),
    ))
}

fn run_one(artifact: &str, quick: bool) -> Result<(), String> {
    let text = match artifact {
        "table1" => {
            let mut s = String::from(
                "Table I - autonomous peripheral-event handling systems\n",
            );
            s.push_str(&sota::render_table1());
            s
        }
        "fig3" => experiments::render_fig3(),
        "latency" => experiments::render_latency(),
        "fig5" => experiments::render_fig5(),
        "fig6a" => experiments::render_fig6a(),
        "fig6b" => experiments::render_fig6b(),
        "ablations" => ablations::render_all(),
        "extensions" => experiments::render_extension_link_power(),
        "sim_throughput" => {
            let samples = 10;
            let rows = throughput::measure(samples);
            // Merge into the existing artifact so keys written by other
            // runs/tools survive a regeneration.
            let existing = std::fs::read_to_string("BENCH_sim_throughput.json").ok();
            let json = throughput::merge_json(&rows, samples, existing.as_deref());
            std::fs::write("BENCH_sim_throughput.json", &json)
                .map_err(|e| format!("writing BENCH_sim_throughput.json: {e}"))?;
            format!("{}(wrote BENCH_sim_throughput.json)\n", throughput::render(&rows))
        }
        "fleet" => run_fleet_artifact()?,
        "desc" => run_desc_artifact()?,
        "lifetime" => run_lifetime_artifact(quick)?,
        other => return Err(format!("unknown artifact `{other}` (expected one of {ALL:?})")),
    };
    println!("================================================================");
    println!("{text}");
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let before = args.len();
    args.retain(|a| a != "--obs");
    let obs = args.len() != before;
    let before = args.len();
    args.retain(|a| a != "--quick");
    let quick = args.len() != before;
    if obs {
        pels_obs::profile::set_enabled(true);
    }
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for artifact in selected {
        if let Err(e) = run_one(artifact, quick) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if obs {
        match run_obs_artifact() {
            Ok(text) => {
                println!("================================================================");
                println!("{text}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
