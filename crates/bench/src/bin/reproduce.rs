//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p pels-bench --bin reproduce --release            # everything
//! cargo run -p pels-bench --bin reproduce -- table1 fig5      # a subset
//! ```
//!
//! Artifacts: `table1`, `fig3`, `fig5`, `latency`, `fig6a`, `fig6b`,
//! `ablations`, `extensions`.

use pels_bench::{ablations, experiments, sota};
use std::process::ExitCode;

const ALL: &[&str] = &[
    "table1", "fig3", "latency", "fig5", "fig6a", "fig6b", "ablations", "extensions",
];

fn run_one(artifact: &str) -> Result<(), String> {
    let text = match artifact {
        "table1" => {
            let mut s = String::from(
                "Table I - autonomous peripheral-event handling systems\n",
            );
            s.push_str(&sota::render_table1());
            s
        }
        "fig3" => experiments::render_fig3(),
        "latency" => experiments::render_latency(),
        "fig5" => experiments::render_fig5(),
        "fig6a" => experiments::render_fig6a(),
        "fig6b" => experiments::render_fig6b(),
        "ablations" => ablations::render_all(),
        "extensions" => experiments::render_extension_link_power(),
        other => return Err(format!("unknown artifact `{other}` (expected one of {ALL:?})")),
    };
    println!("================================================================");
    println!("{text}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for artifact in selected {
        if let Err(e) = run_one(artifact) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
