//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p pels-bench --bin reproduce --release            # everything
//! cargo run -p pels-bench --bin reproduce -- table1 fig5      # a subset
//! ```
//!
//! Artifacts: `table1`, `fig3`, `fig5`, `latency`, `fig6a`, `fig6b`,
//! `ablations`, `extensions`, `sim_throughput` (which additionally
//! writes `BENCH_sim_throughput.json` so the simulator's own speed is
//! tracked across PRs), and `fleet` (which runs a reference sweep on 1
//! worker and on all available workers, checks the two reports are
//! bit-identical, and writes `BENCH_fleet_throughput.json`).

use pels_bench::{ablations, experiments, sota, throughput};
use pels_fleet::{report as fleet_report, FleetEngine, SweepSpec};
use pels_soc::Mediator;
use std::process::ExitCode;

const ALL: &[&str] = &[
    "table1",
    "fig3",
    "latency",
    "fig5",
    "fig6a",
    "fig6b",
    "ablations",
    "extensions",
    "sim_throughput",
    "fleet",
];

/// The reference 8-job sweep for the fleet artifact: 2 mediators × 2
/// frequencies × 2 link counts.
fn fleet_reference_spec() -> SweepSpec {
    SweepSpec::new()
        .mediators(&[Mediator::PelsSequenced, Mediator::PelsInstant])
        .freqs_mhz(&[27.0, 55.0])
        .links(&[1, 4])
}

fn run_fleet_artifact() -> Result<String, String> {
    let spec = fleet_reference_spec();
    let serial = FleetEngine::new(1)
        .run_sweep(&spec)
        .map_err(|e| format!("fleet sweep invalid: {e}"))?;
    let parallel = FleetEngine::auto()
        .run_sweep(&spec)
        .map_err(|e| format!("fleet sweep invalid: {e}"))?;
    if serial.digest() != parallel.digest() {
        return Err(format!(
            "fleet determinism violated: 1-worker digest {:016x} != {}-worker digest {:016x}",
            serial.digest(),
            parallel.workers,
            parallel.digest()
        ));
    }
    let host = pels_fleet::engine::host_parallelism();
    let json = fleet_report::to_json(&parallel, host);
    std::fs::write("BENCH_fleet_throughput.json", &json)
        .map_err(|e| format!("writing BENCH_fleet_throughput.json: {e}"))?;
    Ok(format!(
        "Fleet - parallel scenario sweep (8-job reference batch)\n{}\n\
         digest {:016x} identical on 1 and {} worker(s) (host parallelism: {host})\n\
         serial wall {:.1} ms -> parallel wall {:.1} ms\n\
         (wrote BENCH_fleet_throughput.json)\n",
        parallel.render(),
        parallel.digest(),
        parallel.workers,
        serial.wall.as_secs_f64() * 1e3,
        parallel.wall.as_secs_f64() * 1e3,
    ))
}

fn run_one(artifact: &str) -> Result<(), String> {
    let text = match artifact {
        "table1" => {
            let mut s = String::from(
                "Table I - autonomous peripheral-event handling systems\n",
            );
            s.push_str(&sota::render_table1());
            s
        }
        "fig3" => experiments::render_fig3(),
        "latency" => experiments::render_latency(),
        "fig5" => experiments::render_fig5(),
        "fig6a" => experiments::render_fig6a(),
        "fig6b" => experiments::render_fig6b(),
        "ablations" => ablations::render_all(),
        "extensions" => experiments::render_extension_link_power(),
        "sim_throughput" => {
            let rows = throughput::measure(10);
            // Merge into the existing artifact so keys written by other
            // runs/tools survive a regeneration.
            let existing = std::fs::read_to_string("BENCH_sim_throughput.json").ok();
            let json = throughput::merge_json(&rows, existing.as_deref());
            std::fs::write("BENCH_sim_throughput.json", &json)
                .map_err(|e| format!("writing BENCH_sim_throughput.json: {e}"))?;
            format!("{}(wrote BENCH_sim_throughput.json)\n", throughput::render(&rows))
        }
        "fleet" => run_fleet_artifact()?,
        other => return Err(format!("unknown artifact `{other}` (expected one of {ALL:?})")),
    };
    println!("================================================================");
    println!("{text}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for artifact in selected {
        if let Err(e) = run_one(artifact) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
