//! Schema gate for the description corpus.
//!
//! ```text
//! cargo run -p pels-bench --bin desc_check --release
//! ```
//!
//! Walks every `*.json` under `examples/descs/` and, per file: parses it
//! as a description document (a [`ScenarioDesc`] when the root carries a
//! `system` key, a bare [`SystemDesc`] otherwise), checks the round trip
//! is the identity (`from_json(to_json(d)) == d`), and smoke-runs the
//! described system for one cycle — so a corpus file that drifts from
//! the parser, or describes a system the builder rejects, fails tier-1
//! verification (`scripts/bench_smoke.sh`) instead of shipping broken.

use pels_obs::json;
use pels_soc::{Scenario, ScenarioDesc, SocBuilder, SystemDesc};
use std::process::ExitCode;

fn check_scenario(text: &str) -> Result<&'static str, String> {
    let desc = ScenarioDesc::from_json(text).map_err(|e| format!("parse: {e}"))?;
    let back = ScenarioDesc::from_json(&desc.to_json())
        .map_err(|e| format!("re-parse of emitted JSON: {e}"))?;
    if back != desc {
        return Err("round-trip is not the identity".into());
    }
    let scenario = Scenario::from_desc(desc).map_err(|e| format!("scenario: {e}"))?;
    let mut soc = scenario.build_soc();
    soc.step();
    Ok("scenario")
}

fn check_system(text: &str) -> Result<&'static str, String> {
    let desc = SystemDesc::from_json(text).map_err(|e| format!("parse: {e}"))?;
    let back = SystemDesc::from_json(&desc.to_json())
        .map_err(|e| format!("re-parse of emitted JSON: {e}"))?;
    if back != desc {
        return Err("round-trip is not the identity".into());
    }
    let mut soc = SocBuilder::from_desc(desc)
        .try_build()
        .map_err(|e| format!("build: {e}"))?;
    soc.step();
    Ok("system")
}

fn check_file(path: &std::path::Path) -> Result<&'static str, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    // Classify by shape: a scenario document nests the system under a
    // `system` key; a bare system document carries `peripherals` at the
    // root.
    let value = json::parse(&text).map_err(|e| format!("malformed JSON: {e}"))?;
    if value.get("system").is_some() {
        check_scenario(&text)
    } else {
        check_system(&text)
    }
}

fn main() -> ExitCode {
    let dir = std::path::Path::new("examples/descs");
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("desc_check: cannot read {}: {e}", dir.display());
            eprintln!("desc_check: run `reproduce -- desc` to generate the corpus");
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("desc_check: no .json files under {}", dir.display());
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok(kind) => println!("desc_check: {} OK ({kind})", path.display()),
            Err(e) => {
                eprintln!("desc_check: {} FAILED: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("desc_check: {} description documents OK", paths.len());
        ExitCode::SUCCESS
    }
}
