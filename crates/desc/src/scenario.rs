//! The workload half of a description: who mediates, the stimulus, how
//! much to measure, and how to run it.

use crate::error::DescError;
use crate::kinds::{ExecMode, Mediator, SensorKind};
use crate::system::SystemDesc;
use pels_core::PelsConfig;
use pels_sim::{Frequency, SimTime};

/// A validated, serializable description of one evaluation run: the
/// [`SystemDesc`] it executes on plus the workload knobs (mediator,
/// threshold, readout shape, event count, execution mode, observability).
///
/// `Scenario::from_desc` (in `pels-soc`) is the canonical way to turn one
/// into a runnable scenario; the legacy `ScenarioBuilder` setters are
/// thin wrappers mutating one of these. JSON round-trips are lossless:
/// `ScenarioDesc::from_json(d.to_json()) == d`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDesc {
    /// The platform the scenario runs on.
    pub system: SystemDesc,
    /// Who mediates the linking event.
    pub mediator: Mediator,
    /// Analog threshold level (V); the default sensor's constant level
    /// sits above it so every readout actuates.
    pub threshold_level: f64,
    /// Wall-clock interval between sensor readouts (the sensor's sample
    /// rate is a property of the application, not of the mediator's
    /// clock).
    pub sample_period: SimTime,
    /// Words per SPI readout.
    pub spi_words: u32,
    /// Linking events to measure.
    pub events: u32,
    /// `true` → the link runs the minimal single-RMW/action program (the
    /// latency-table measurement); `false` → the full Figure 3 threshold
    /// check (the Figure 5 power workload).
    pub rmw_only: bool,
    /// Land readout data in L2 through the SPI µDMA channel.
    pub use_udma: bool,
    /// Which simulation path to run on (fast / single-step / naive); all
    /// three are observationally identical.
    pub exec: ExecMode,
    /// Collect an observability metrics snapshot with the report.
    /// Publishing happens after the simulation windows complete, so the
    /// setting cannot perturb architectural results
    /// (`tests/obs_invariance.rs`).
    pub obs: bool,
    /// Nominal sampling-window width (in cycles) for the activity
    /// timeline of the active run; `0` disables sampling.
    pub timeline_window: u64,
    /// Record causal event flows (`pels_sim::flow`) during the run. Pure
    /// observation like `obs`: the differential `flow_invariance` suite
    /// proves runs are bit-identical with flows on and off.
    pub flows: bool,
    /// Integrate the run's power into an energy ledger and project
    /// battery lifetime with the report. Pure post-processing over the
    /// activity the run recorded anyway: `tests/lifetime_invariance.rs`
    /// proves runs are bit-identical with the ledger on and off.
    pub lifetime: bool,
}

impl Default for ScenarioDesc {
    /// The paper's common base workload on the default platform: 2.5 V
    /// sensor vs 1.6 V threshold, 1 µs sample period, 2-word DMA
    /// readouts, 20 events, sequenced-action mediation.
    fn default() -> Self {
        ScenarioDesc {
            system: SystemDesc::default(),
            mediator: Mediator::PelsSequenced,
            threshold_level: 1.6,
            sample_period: SimTime::from_ns(1000),
            spi_words: 2,
            events: 20,
            rmw_only: false,
            use_udma: true,
            exec: ExecMode::Fast,
            obs: false,
            timeline_window: 0,
            flows: false,
            lifetime: false,
        }
    }
}

impl ScenarioDesc {
    /// The system clock (of the mediating system).
    pub fn freq(&self) -> Frequency {
        self.system.freq
    }

    /// The analog source.
    pub fn sensor(&self) -> SensorKind {
        self.system.sensor
    }

    /// The SPI cycles-per-word divider of the described system.
    pub fn spi_clkdiv(&self) -> u32 {
        self.system.spi_clkdiv()
    }

    /// The PELS configuration of the described system (loopback left to
    /// the SoC assembly).
    pub fn pels(&self) -> PelsConfig {
        self.system.pels.to_config()
    }

    /// The sample period in cycles of this scenario's clock.
    pub fn timer_period_cycles(&self) -> u32 {
        (self.sample_period.as_ps() / self.system.freq.period_ps()) as u32
    }

    /// The sensor threshold as a 12-bit code.
    pub fn threshold_code(&self) -> u32 {
        SensorKind::code_for_level(self.threshold_level)
    }

    /// Checks the description describes a runnable, measurable scenario.
    ///
    /// # Errors
    ///
    /// [`DescError`] with the JSON path of the first offending value:
    /// zero events / SPI words / sample period, the interrupt baseline
    /// without µDMA, or any [`SystemDesc::validate`] failure (reported
    /// under `/system`).
    pub fn validate(&self) -> Result<(), DescError> {
        if self.events == 0 {
            return Err(DescError::new("/events", "events must be at least 1"));
        }
        if self.spi_words == 0 {
            return Err(DescError::new("/spi_words", "spi_words must be at least 1"));
        }
        if self.sample_period.as_ps() == 0 {
            return Err(DescError::new(
                "/sample_period_ps",
                "sample_period must be non-zero",
            ));
        }
        if self.mediator == Mediator::IbexIrq && !self.use_udma {
            return Err(DescError::new(
                "/use_udma",
                "the ibex-irq baseline requires use_udma (its handler reads the sample from L2)",
            ));
        }
        self.system.validate_at("/system")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_desc_validates() {
        let d = ScenarioDesc::default();
        d.validate().expect("default scenario desc is valid");
        // 1 µs at 55 MHz (period rounded to 18182 ps): 54 whole cycles.
        assert_eq!(d.timer_period_cycles(), 54);
        assert_eq!(d.spi_clkdiv(), 4);
        assert_eq!(d.pels(), PelsConfig::default());
    }

    #[test]
    fn validate_pins_paths() {
        let d = ScenarioDesc {
            events: 0,
            ..ScenarioDesc::default()
        };
        assert_eq!(d.validate().unwrap_err().path, "/events");

        let d = ScenarioDesc {
            spi_words: 0,
            ..ScenarioDesc::default()
        };
        assert_eq!(d.validate().unwrap_err().path, "/spi_words");

        let d = ScenarioDesc {
            sample_period: SimTime::ZERO,
            ..ScenarioDesc::default()
        };
        assert_eq!(d.validate().unwrap_err().path, "/sample_period_ps");

        let d = ScenarioDesc {
            mediator: Mediator::IbexIrq,
            use_udma: false,
            ..ScenarioDesc::default()
        };
        assert_eq!(d.validate().unwrap_err().path, "/use_udma");

        let mut d = ScenarioDesc::default();
        d.system.pels.links = 99;
        assert_eq!(d.validate().unwrap_err().path, "/system/pels/links");
    }
}
