//! JSON round-tripping for descriptions, on the in-repo
//! [`pels_obs::json`] parser — no external dependencies.
//!
//! Emission is *canonical*: every key is written, in a fixed order, with
//! exact-integer picosecond fields (`freq_period_ps`,
//! `sample_period_ps`) so that `from_json(d.to_json()) == d` holds
//! bit-for-bit for every valid description. Decoding rejects unknown
//! keys and carries the JSON path of the first offending value in the
//! returned [`DescError`].

use crate::error::DescError;
use crate::kinds::{ExecMode, Mediator, SensorKind};
use crate::scenario::ScenarioDesc;
use crate::system::{PelsDesc, PeriphInst, PeriphKind, SystemDesc};
use pels_interconnect::{ArbiterKind, Topology};
use pels_obs::json::{self, Value};
use pels_sim::{Frequency, SimTime};
use std::fmt::Write as _;

/// The description schema version this crate reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Decode helpers
// ---------------------------------------------------------------------

fn as_obj<'a>(v: &'a Value, path: &str) -> Result<&'a [(String, Value)], DescError> {
    v.as_object()
        .ok_or_else(|| DescError::new(path, "expected an object"))
}

fn req<'a>(
    obj: &'a [(String, Value)],
    key: &str,
    path: &str,
) -> Result<&'a Value, DescError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DescError::new(path, format!("missing required key `{key}`")))
}

fn opt<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn check_keys(
    obj: &[(String, Value)],
    allowed: &[&str],
    path: &str,
) -> Result<(), DescError> {
    for (k, _) in obj {
        if !allowed.contains(&k.as_str()) {
            return Err(DescError::new(
                format!("{path}/{k}"),
                format!("unknown key `{k}`"),
            ));
        }
    }
    Ok(())
}

fn dec_f64(v: &Value, path: &str) -> Result<f64, DescError> {
    v.as_f64()
        .ok_or_else(|| DescError::new(path, "expected a number"))
}

fn dec_u64(v: &Value, path: &str) -> Result<u64, DescError> {
    v.as_u64()
        .ok_or_else(|| DescError::new(path, "expected a non-negative integer"))
}

fn dec_u32(v: &Value, path: &str) -> Result<u32, DescError> {
    let n = dec_u64(v, path)?;
    u32::try_from(n)
        .map_err(|_| DescError::new(path, format!("{n} does not fit a 32-bit integer")))
}

fn dec_usize(v: &Value, path: &str) -> Result<usize, DescError> {
    Ok(dec_u64(v, path)? as usize)
}

fn dec_bool(v: &Value, path: &str) -> Result<bool, DescError> {
    v.as_bool()
        .ok_or_else(|| DescError::new(path, "expected a boolean"))
}

fn dec_str<'a>(v: &'a Value, path: &str) -> Result<&'a str, DescError> {
    v.as_str()
        .ok_or_else(|| DescError::new(path, "expected a string"))
}

/// `schema_version`, where present, must be the one we speak.
fn check_version(obj: &[(String, Value)], path: &str, required: bool) -> Result<(), DescError> {
    let vpath = format!("{path}/schema_version");
    match opt(obj, "schema_version") {
        None if required => Err(DescError::new(
            path,
            "missing required key `schema_version`",
        )),
        None => Ok(()),
        Some(v) => {
            let n = dec_u64(v, &vpath)?;
            if n != SCHEMA_VERSION {
                return Err(DescError::new(
                    vpath,
                    format!("unsupported schema_version {n} (this build reads {SCHEMA_VERSION})"),
                ));
            }
            Ok(())
        }
    }
}

fn dec_sensor(v: &Value, path: &str) -> Result<SensorKind, DescError> {
    let obj = as_obj(v, path)?;
    let kind = dec_str(req(obj, "kind", path)?, &format!("{path}/kind"))?;
    let field = |key: &str| -> Result<f64, DescError> {
        dec_f64(req(obj, key, path)?, &format!("{path}/{key}"))
    };
    match kind {
        "constant" => {
            check_keys(obj, &["kind", "level"], path)?;
            Ok(SensorKind::Constant(field("level")?))
        }
        "ramp" => {
            check_keys(obj, &["kind", "start", "slope_per_us"], path)?;
            Ok(SensorKind::Ramp {
                start: field("start")?,
                slope_per_us: field("slope_per_us")?,
            })
        }
        "noisy-ramp" => {
            check_keys(obj, &["kind", "start", "slope_per_us", "sigma", "seed"], path)?;
            Ok(SensorKind::NoisyRamp {
                start: field("start")?,
                slope_per_us: field("slope_per_us")?,
                sigma: field("sigma")?,
                seed: dec_u64(req(obj, "seed", path)?, &format!("{path}/seed"))?,
            })
        }
        "sine" => {
            check_keys(obj, &["kind", "offset", "amplitude", "freq_hz"], path)?;
            Ok(SensorKind::Sine {
                offset: field("offset")?,
                amplitude: field("amplitude")?,
                freq_hz: field("freq_hz")?,
            })
        }
        other => Err(DescError::new(
            format!("{path}/kind"),
            format!("unknown sensor kind `{other}`"),
        )),
    }
}

fn dec_periph(v: &Value, path: &str) -> Result<PeriphInst, DescError> {
    let obj = as_obj(v, path)?;
    let kind = dec_str(req(obj, "kind", path)?, &format!("{path}/kind"))?;
    let offset = dec_u32(req(obj, "offset", path)?, &format!("{path}/offset"))?;
    let plain = |k: PeriphKind| -> Result<PeriphKind, DescError> {
        check_keys(obj, &["kind", "offset"], path)?;
        Ok(k)
    };
    let kind = match kind {
        "gpio" => plain(PeriphKind::Gpio)?,
        "timer" => plain(PeriphKind::Timer)?,
        "uart" => plain(PeriphKind::Uart)?,
        "wdt" => plain(PeriphKind::Wdt)?,
        "i2c" => plain(PeriphKind::I2c)?,
        "spi" => {
            check_keys(obj, &["kind", "offset", "clkdiv"], path)?;
            PeriphKind::Spi {
                clkdiv: dec_u32(req(obj, "clkdiv", path)?, &format!("{path}/clkdiv"))?,
            }
        }
        "adc" => {
            check_keys(obj, &["kind", "offset", "conversion_cycles"], path)?;
            PeriphKind::Adc {
                conversion_cycles: dec_u32(
                    req(obj, "conversion_cycles", path)?,
                    &format!("{path}/conversion_cycles"),
                )?,
            }
        }
        other => {
            return Err(DescError::new(
                format!("{path}/kind"),
                format!("unknown peripheral kind `{other}`"),
            ))
        }
    };
    Ok(PeriphInst { kind, offset })
}

fn dec_freq(obj: &[(String, Value)], path: &str) -> Result<Frequency, DescError> {
    let ps = opt(obj, "freq_period_ps");
    let mhz = opt(obj, "freq_mhz");
    match (ps, mhz) {
        (Some(_), Some(_)) => Err(DescError::new(
            format!("{path}/freq_mhz"),
            "specify exactly one of `freq_period_ps` and `freq_mhz`",
        )),
        (Some(v), None) => {
            let p = format!("{path}/freq_period_ps");
            let ps = dec_u64(v, &p)?;
            if ps == 0 {
                return Err(DescError::new(p, "clock period must be at least 1 ps"));
            }
            Ok(Frequency::from_period_ps(ps))
        }
        (None, Some(v)) => {
            let p = format!("{path}/freq_mhz");
            let mhz = dec_f64(v, &p)?;
            if !(mhz > 0.0 && mhz.is_finite()) {
                return Err(DescError::new(p, "frequency must be positive and finite"));
            }
            Ok(Frequency::from_mhz(mhz))
        }
        (None, None) => Err(DescError::new(
            path,
            "missing required key `freq_period_ps` (or `freq_mhz`)",
        )),
    }
}

const SYSTEM_KEYS: &[&str] = &[
    "schema_version",
    "freq_period_ps",
    "freq_mhz",
    "pels",
    "sensor",
    "topology",
    "arbiter",
    "timer_starts_spi",
    "peripherals",
];

fn dec_system(v: &Value, path: &str, version_required: bool) -> Result<SystemDesc, DescError> {
    let obj = as_obj(v, path)?;
    check_keys(obj, SYSTEM_KEYS, path)?;
    check_version(obj, path, version_required)?;
    let freq = dec_freq(obj, path)?;

    let pels_path = format!("{path}/pels");
    let pels_obj = as_obj(req(obj, "pels", path)?, &pels_path)?;
    check_keys(pels_obj, &["links", "scm_lines", "fifo_depth"], &pels_path)?;
    let pels = PelsDesc {
        links: dec_usize(req(pels_obj, "links", &pels_path)?, &format!("{pels_path}/links"))?,
        scm_lines: dec_usize(
            req(pels_obj, "scm_lines", &pels_path)?,
            &format!("{pels_path}/scm_lines"),
        )?,
        fifo_depth: dec_usize(
            req(pels_obj, "fifo_depth", &pels_path)?,
            &format!("{pels_path}/fifo_depth"),
        )?,
    };

    let sensor = dec_sensor(req(obj, "sensor", path)?, &format!("{path}/sensor"))?;

    let topo_path = format!("{path}/topology");
    let topology = match dec_str(req(obj, "topology", path)?, &topo_path)? {
        "shared" => Topology::Shared,
        "per-slave crossbar" => Topology::PerSlaveCrossbar,
        other => {
            return Err(DescError::new(
                topo_path,
                format!("unknown topology `{other}`"),
            ))
        }
    };

    let arb_path = format!("{path}/arbiter");
    let arbiter = match dec_str(req(obj, "arbiter", path)?, &arb_path)? {
        "round-robin" => ArbiterKind::RoundRobin,
        "fixed-priority" => ArbiterKind::FixedPriority,
        other => {
            return Err(DescError::new(
                arb_path,
                format!("unknown arbiter `{other}`"),
            ))
        }
    };

    let timer_starts_spi = dec_bool(
        req(obj, "timer_starts_spi", path)?,
        &format!("{path}/timer_starts_spi"),
    )?;

    let list_path = format!("{path}/peripherals");
    let list = req(obj, "peripherals", path)?
        .as_array()
        .ok_or_else(|| DescError::new(&list_path, "expected an array"))?;
    let mut peripherals = Vec::with_capacity(list.len());
    for (i, item) in list.iter().enumerate() {
        peripherals.push(dec_periph(item, &format!("{list_path}/{i}"))?);
    }

    Ok(SystemDesc {
        freq,
        pels,
        sensor,
        topology,
        arbiter,
        timer_starts_spi,
        peripherals,
    })
}

const SCENARIO_KEYS: &[&str] = &[
    "schema_version",
    "mediator",
    "threshold_level",
    "sample_period_ps",
    "spi_words",
    "events",
    "rmw_only",
    "use_udma",
    "exec",
    "obs",
    "timeline_window",
    "flows",
    "lifetime",
    "system",
];

fn dec_scenario(v: &Value, path: &str) -> Result<ScenarioDesc, DescError> {
    let obj = as_obj(v, path)?;
    check_keys(obj, SCENARIO_KEYS, path)?;
    check_version(obj, path, true)?;

    let med_path = format!("{path}/mediator");
    let mediator = dec_str(req(obj, "mediator", path)?, &med_path).and_then(|s| {
        Mediator::from_name(s)
            .ok_or_else(|| DescError::new(&med_path, format!("unknown mediator `{s}`")))
    })?;

    let exec_path = format!("{path}/exec");
    let exec = dec_str(req(obj, "exec", path)?, &exec_path).and_then(|s| {
        ExecMode::from_name(s)
            .ok_or_else(|| DescError::new(&exec_path, format!("unknown exec mode `{s}`")))
    })?;

    let sample_period = SimTime::from_ps(dec_u64(
        req(obj, "sample_period_ps", path)?,
        &format!("{path}/sample_period_ps"),
    )?);

    let system = dec_system(req(obj, "system", path)?, &format!("{path}/system"), false)?;

    Ok(ScenarioDesc {
        system,
        mediator,
        threshold_level: dec_f64(
            req(obj, "threshold_level", path)?,
            &format!("{path}/threshold_level"),
        )?,
        sample_period,
        spi_words: dec_u32(req(obj, "spi_words", path)?, &format!("{path}/spi_words"))?,
        events: dec_u32(req(obj, "events", path)?, &format!("{path}/events"))?,
        rmw_only: dec_bool(req(obj, "rmw_only", path)?, &format!("{path}/rmw_only"))?,
        use_udma: dec_bool(req(obj, "use_udma", path)?, &format!("{path}/use_udma"))?,
        exec,
        obs: dec_bool(req(obj, "obs", path)?, &format!("{path}/obs"))?,
        timeline_window: dec_u64(
            req(obj, "timeline_window", path)?,
            &format!("{path}/timeline_window"),
        )?,
        // Optional (defaults off) so descriptions written before the
        // causal-flow layer still parse; emission always writes it.
        flows: match opt(obj, "flows") {
            Some(v) => dec_bool(v, &format!("{path}/flows"))?,
            None => false,
        },
        // Optional like `flows`: descriptions written before the
        // energy-ledger layer still parse; emission always writes it.
        lifetime: match opt(obj, "lifetime") {
            Some(v) => dec_bool(v, &format!("{path}/lifetime"))?,
            None => false,
        },
    })
}

// ---------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------

/// Shortest `f64` form that parses back to the identical value (Rust's
/// `Display` guarantees the round-trip).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn write_sensor(out: &mut String, sensor: SensorKind) {
    match sensor {
        SensorKind::Constant(level) => {
            let _ = write!(out, "{{ \"kind\": \"constant\", \"level\": {} }}", fmt_f64(level));
        }
        SensorKind::Ramp { start, slope_per_us } => {
            let _ = write!(
                out,
                "{{ \"kind\": \"ramp\", \"start\": {}, \"slope_per_us\": {} }}",
                fmt_f64(start),
                fmt_f64(slope_per_us)
            );
        }
        SensorKind::NoisyRamp {
            start,
            slope_per_us,
            sigma,
            seed,
        } => {
            let _ = write!(
                out,
                "{{ \"kind\": \"noisy-ramp\", \"start\": {}, \"slope_per_us\": {}, \
                 \"sigma\": {}, \"seed\": {seed} }}",
                fmt_f64(start),
                fmt_f64(slope_per_us),
                fmt_f64(sigma)
            );
        }
        SensorKind::Sine {
            offset,
            amplitude,
            freq_hz,
        } => {
            let _ = write!(
                out,
                "{{ \"kind\": \"sine\", \"offset\": {}, \"amplitude\": {}, \"freq_hz\": {} }}",
                fmt_f64(offset),
                fmt_f64(amplitude),
                fmt_f64(freq_hz)
            );
        }
    }
}

fn write_periph(out: &mut String, p: &PeriphInst) {
    let _ = write!(out, "{{ \"kind\": \"{}\", \"offset\": {}", p.kind.name(), p.offset);
    match p.kind {
        PeriphKind::Spi { clkdiv } => {
            let _ = write!(out, ", \"clkdiv\": {clkdiv}");
        }
        PeriphKind::Adc { conversion_cycles } => {
            let _ = write!(out, ", \"conversion_cycles\": {conversion_cycles}");
        }
        _ => {}
    }
    out.push_str(" }");
}

fn write_system(out: &mut String, d: &SystemDesc, pad: &str, root: bool) {
    let _ = writeln!(out, "{{");
    if root {
        let _ = writeln!(out, "{pad}  \"schema_version\": {SCHEMA_VERSION},");
    }
    let _ = writeln!(out, "{pad}  \"freq_period_ps\": {},", d.freq.period_ps());
    let _ = writeln!(
        out,
        "{pad}  \"pels\": {{ \"links\": {}, \"scm_lines\": {}, \"fifo_depth\": {} }},",
        d.pels.links, d.pels.scm_lines, d.pels.fifo_depth
    );
    let _ = write!(out, "{pad}  \"sensor\": ");
    write_sensor(out, d.sensor);
    let _ = writeln!(out, ",");
    let _ = writeln!(out, "{pad}  \"topology\": \"{}\",", d.topology);
    let _ = writeln!(out, "{pad}  \"arbiter\": \"{}\",", d.arbiter);
    let _ = writeln!(out, "{pad}  \"timer_starts_spi\": {},", d.timer_starts_spi);
    let _ = writeln!(out, "{pad}  \"peripherals\": [");
    for (i, p) in d.peripherals.iter().enumerate() {
        let _ = write!(out, "{pad}    ");
        write_periph(out, p);
        let _ = writeln!(out, "{}", if i + 1 < d.peripherals.len() { "," } else { "" });
    }
    let _ = writeln!(out, "{pad}  ]");
    let _ = write!(out, "{pad}}}");
}

impl SystemDesc {
    /// Serializes to canonical JSON (every key, fixed order, exact
    /// integer picoseconds). [`SystemDesc::from_json`] of the result is
    /// identical to `self` for every valid description.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        write_system(&mut s, self, "", true);
        s.push('\n');
        s
    }

    /// Parses, decodes and validates a description document.
    ///
    /// # Errors
    ///
    /// [`DescError`] carrying the JSON path of the first problem:
    /// malformed JSON (path `""`), an unknown key, a wrong type, a
    /// missing key, or any [`SystemDesc::validate`] failure.
    pub fn from_json(text: &str) -> Result<Self, DescError> {
        let doc = json::parse(text)
            .map_err(|e| DescError::new("", format!("malformed JSON: {e}")))?;
        let desc = dec_system(&doc, "", true)?;
        desc.validate()?;
        Ok(desc)
    }
}

impl ScenarioDesc {
    /// Serializes to canonical JSON (every key, fixed order, exact
    /// integer picoseconds, the system nested under `"system"`).
    /// [`ScenarioDesc::from_json`] of the result is identical to `self`
    /// for every valid description.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"mediator\": \"{}\",", self.mediator);
        let _ = writeln!(s, "  \"threshold_level\": {},", fmt_f64(self.threshold_level));
        let _ = writeln!(s, "  \"sample_period_ps\": {},", self.sample_period.as_ps());
        let _ = writeln!(s, "  \"spi_words\": {},", self.spi_words);
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"rmw_only\": {},", self.rmw_only);
        let _ = writeln!(s, "  \"use_udma\": {},", self.use_udma);
        let _ = writeln!(s, "  \"exec\": \"{}\",", self.exec);
        let _ = writeln!(s, "  \"obs\": {},", self.obs);
        let _ = writeln!(s, "  \"timeline_window\": {},", self.timeline_window);
        let _ = writeln!(s, "  \"flows\": {},", self.flows);
        let _ = writeln!(s, "  \"lifetime\": {},", self.lifetime);
        s.push_str("  \"system\": ");
        write_system(&mut s, &self.system, "  ", false);
        s.push_str("\n}\n");
        s
    }

    /// Parses, decodes and validates a scenario description document.
    ///
    /// # Errors
    ///
    /// [`DescError`] carrying the JSON path of the first problem:
    /// malformed JSON (path `""`), an unknown key, a wrong type, a
    /// missing key, or any [`ScenarioDesc::validate`] failure.
    pub fn from_json(text: &str) -> Result<Self, DescError> {
        let doc = json::parse(text)
            .map_err(|e| DescError::new("", format!("malformed JSON: {e}")))?;
        let desc = dec_scenario(&doc, "")?;
        desc.validate()?;
        Ok(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_descs_round_trip() {
        let d = SystemDesc::default();
        assert_eq!(SystemDesc::from_json(&d.to_json()).unwrap(), d);
        let s = ScenarioDesc::default();
        assert_eq!(ScenarioDesc::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn non_default_desc_round_trips() {
        let mut s = ScenarioDesc {
            mediator: Mediator::IbexIrq,
            exec: ExecMode::Naive,
            ..ScenarioDesc::default()
        };
        s.system.topology = Topology::PerSlaveCrossbar;
        s.system.arbiter = ArbiterKind::FixedPriority;
        s.system.sensor = SensorKind::NoisyRamp {
            start: 0.25,
            slope_per_us: 0.125,
            sigma: 0.0625,
            seed: 0xDEAD_BEEF,
        };
        s.system.pels.links = 8;
        s.system.peripherals.swap(0, 6);
        s.timeline_window = 128;
        assert_eq!(ScenarioDesc::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn malformed_json_reports_at_root() {
        let e = SystemDesc::from_json("{ not json").unwrap_err();
        assert_eq!(e.path, "");
        assert!(e.message.contains("malformed JSON"), "{e}");
    }

    #[test]
    fn unknown_keys_are_rejected_with_paths() {
        let mut text = SystemDesc::default().to_json();
        text = text.replace("\"topology\"", "\"topographies\"");
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/topographies");
        assert!(e.message.contains("unknown key"), "{e}");

        let mut s = ScenarioDesc::default().to_json();
        s = s.replace("\"obs\"", "\"observe\"");
        let e = ScenarioDesc::from_json(&s).unwrap_err();
        assert_eq!(e.path, "/observe");
    }

    #[test]
    fn out_of_range_values_report_paths_and_messages() {
        // Zero frequency.
        let text = SystemDesc::default()
            .to_json()
            .replace("\"freq_period_ps\": 18182", "\"freq_period_ps\": 0");
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/freq_period_ps");
        assert!(e.message.contains("at least 1 ps"), "{e}");

        // Zero clkdiv.
        let text = SystemDesc::default()
            .to_json()
            .replace("\"clkdiv\": 4", "\"clkdiv\": 0");
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/peripherals/2/clkdiv");
        assert!(e.message.contains("at least 1"), "{e}");

        // No links.
        let text = SystemDesc::default()
            .to_json()
            .replace("\"links\": 1,", "\"links\": 0,");
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/pels/links");
        assert!(e.message.contains("between 1 and 64"), "{e}");

        // The same failure inside a scenario reports under /system.
        let text = ScenarioDesc::default()
            .to_json()
            .replace("\"links\": 1,", "\"links\": 0,");
        let e = ScenarioDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/system/pels/links");
    }

    #[test]
    fn type_and_key_errors_report_paths() {
        let text = SystemDesc::default()
            .to_json()
            .replace("\"timer_starts_spi\": true", "\"timer_starts_spi\": 1");
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/timer_starts_spi");
        assert!(e.message.contains("boolean"), "{e}");

        let text = ScenarioDesc::default()
            .to_json()
            .replace("\"mediator\": \"pels-sequenced\"", "\"mediator\": \"smi\"");
        let e = ScenarioDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/mediator");
        assert!(e.message.contains("unknown mediator"), "{e}");

        let text = SystemDesc::default()
            .to_json()
            .replace("\"kind\": \"wdt\"", "\"kind\": \"dma\"");
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/peripherals/5/kind");
        assert!(e.message.contains("unknown peripheral kind `dma`"), "{e}");
    }

    #[test]
    fn schema_version_is_required_and_checked() {
        let text = SystemDesc::default()
            .to_json()
            .replace("  \"schema_version\": 1,\n", "");
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert!(e.message.contains("schema_version"), "{e}");

        let text = ScenarioDesc::default()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let e = ScenarioDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/schema_version");
        assert!(e.message.contains("unsupported"), "{e}");
    }

    #[test]
    fn freq_mhz_is_accepted_but_not_alongside_period() {
        let text = SystemDesc::default()
            .to_json()
            .replace("\"freq_period_ps\": 18182", "\"freq_mhz\": 55");
        let d = SystemDesc::from_json(&text).unwrap();
        assert_eq!(d.freq, Frequency::from_mhz(55.0));

        let text = SystemDesc::default().to_json().replace(
            "\"freq_period_ps\": 18182",
            "\"freq_period_ps\": 18182, \"freq_mhz\": 55",
        );
        let e = SystemDesc::from_json(&text).unwrap_err();
        assert_eq!(e.path, "/freq_mhz");
        assert!(e.message.contains("exactly one"), "{e}");
    }
}
