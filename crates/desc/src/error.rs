//! Structured description diagnostics.

use std::fmt;

/// Why a description failed to parse or validate.
///
/// Every error carries the JSON path of the offending value (e.g.
/// `/peripherals/2/kind`), so a sweep over description files can point at
/// the exact field — not just "invalid description". For a description
/// constructed in code (never parsed), the path refers to the field the
/// same JSON document would carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescError {
    /// JSON-pointer-style path of the offending value (`""` is the
    /// document root).
    pub path: String,
    /// What is wrong with it.
    pub message: String,
}

impl DescError {
    /// Builds an error at `path`.
    pub fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        DescError {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Re-roots the error under `prefix` — used when a nested object
    /// (e.g. a `SystemDesc` inside a `ScenarioDesc`) reports relative to
    /// its own root.
    pub fn prefixed(mut self, prefix: &str) -> Self {
        self.path = format!("{prefix}{}", self.path);
        self
    }
}

impl fmt::Display for DescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = if self.path.is_empty() { "/" } else { &self.path };
        write!(f, "{path}: {}", self.message)
    }
}

impl std::error::Error for DescError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_path_and_message() {
        let e = DescError::new("/peripherals/2/kind", "unknown peripheral kind `dma`");
        assert_eq!(
            e.to_string(),
            "/peripherals/2/kind: unknown peripheral kind `dma`"
        );
        let e = DescError::new("", "top level must be an object");
        assert_eq!(e.to_string(), "/: top level must be an object");
    }

    #[test]
    fn prefixed_reroots() {
        let e = DescError::new("/pels/links", "out of range").prefixed("/system");
        assert_eq!(e.path, "/system/pels/links");
    }
}
