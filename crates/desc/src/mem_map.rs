//! The SoC address map (PULPissimo-style bases).

/// L2 SRAM base address.
pub const L2_BASE: u32 = 0x1C00_0000;
/// L2 SRAM size (the paper's implemented configuration: 192 KiB).
pub const L2_SIZE: u32 = 192 * 1024;

/// Base of the APB peripheral region.
pub const APB_BASE: u32 = 0x1A10_0000;
/// Per-peripheral slot stride. All slots fit in one 12-bit word-offset
/// window (16 KiB) so a single PELS link base covers every peripheral —
/// the constraint the paper's command encoding imposes (Section III-2).
pub const APB_STRIDE: u32 = 0x400;

/// GPIO slot offset from [`APB_BASE`].
pub const GPIO_OFFSET: u32 = 0;
/// Timer slot offset.
pub const TIMER_OFFSET: u32 = APB_STRIDE;
/// SPI slot offset.
pub const SPI_OFFSET: u32 = 2 * APB_STRIDE;
/// ADC slot offset.
pub const ADC_OFFSET: u32 = 3 * APB_STRIDE;
/// UART slot offset.
pub const UART_OFFSET: u32 = 4 * APB_STRIDE;
/// Watchdog slot offset.
pub const WDT_OFFSET: u32 = 5 * APB_STRIDE;
/// I2C slot offset.
pub const I2C_OFFSET: u32 = 6 * APB_STRIDE;
/// Total APB region size.
pub const APB_SIZE: u32 = 7 * APB_STRIDE;

/// PELS configuration-port base (accessed by the CPU, not by links).
pub const PELS_BASE: u32 = 0x1A20_0000;
/// PELS configuration-port size.
pub const PELS_SIZE: u32 = 0x1000;

/// CPU reset vector (start of the boot image in L2).
pub const RESET_PC: u32 = L2_BASE + 0x80;

/// Absolute byte address of a register inside a peripheral slot.
pub const fn apb_reg(slot_offset: u32, reg: u32) -> u32 {
    APB_BASE + slot_offset + reg
}

/// PELS-command word offset (from a link base at [`APB_BASE`]) of a
/// peripheral register.
pub const fn pels_word_offset(slot_offset: u32, reg: u32) -> u16 {
    ((slot_offset + reg) / 4) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn apb_region_fits_pels_offset_window() {
        // 12-bit word offsets cover 16 KiB.
        assert!(APB_SIZE <= 0x1000 * 4);
        let last = pels_word_offset(I2C_OFFSET, 0x14);
        assert!(last <= 0xFFF);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn regions_do_not_overlap() {
        assert!(APB_BASE + APB_SIZE <= PELS_BASE);
        assert!(PELS_BASE + PELS_SIZE <= L2_BASE);
    }

    #[test]
    fn helpers_compose() {
        assert_eq!(apb_reg(SPI_OFFSET, 0x18), 0x1A10_0818);
        assert_eq!(pels_word_offset(SPI_OFFSET, 0x18), 0x206);
        assert_eq!(pels_word_offset(GPIO_OFFSET, 0x08), 2);
    }
}
