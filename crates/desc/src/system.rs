//! The hardware half of a description: clocks, PELS geometry, peripheral
//! instances, fabric shape.

use crate::error::DescError;
use crate::kinds::SensorKind;
use crate::mem_map::{
    APB_SIZE, APB_STRIDE, GPIO_OFFSET, SPI_OFFSET,
};
use pels_core::PelsConfig;
use pels_interconnect::{ArbiterKind, Topology};
use pels_sim::{EventVector, Frequency};

/// The PELS geometry of a description.
///
/// The loopback window is *not* part of the description: which action
/// lines feed back is an assembly-time invariant of the SoC (lines
/// 40..=47, see `pels_soc`), not a per-system knob, so descriptions
/// cannot desynchronize it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PelsDesc {
    /// Number of independent links (paper sweeps 1–8; hardware model
    /// caps at 64).
    pub links: usize,
    /// SCM lines (commands) per link (paper sweeps 4, 6, 8; hardware
    /// model caps at 512).
    pub scm_lines: usize,
    /// Trigger-FIFO depth per link (0 = unbuffered ablation).
    pub fifo_depth: usize,
}

impl Default for PelsDesc {
    /// The paper's minimal configuration — identical to
    /// [`PelsConfig::default`].
    fn default() -> Self {
        Self::from_config(&PelsConfig::default())
    }
}

impl PelsDesc {
    /// The corresponding [`PelsConfig`] (loopback left empty — the SoC
    /// assembly owns it).
    pub fn to_config(self) -> PelsConfig {
        PelsConfig {
            links: self.links,
            scm_lines: self.scm_lines,
            fifo_depth: self.fifo_depth,
            loopback: EventVector::EMPTY,
        }
    }

    /// The description of an existing configuration (loopback dropped —
    /// it is assembly-owned).
    pub fn from_config(config: &PelsConfig) -> Self {
        PelsDesc {
            links: config.links,
            scm_lines: config.scm_lines,
            fifo_depth: config.fifo_depth,
        }
    }

    fn validate_at(&self, base: &str) -> Result<(), DescError> {
        if !(1..=64).contains(&self.links) {
            return Err(DescError::new(
                format!("{base}/pels/links"),
                format!("links must be between 1 and 64, got {}", self.links),
            ));
        }
        if !(1..=512).contains(&self.scm_lines) {
            return Err(DescError::new(
                format!("{base}/pels/scm_lines"),
                format!("scm_lines must be between 1 and 512, got {}", self.scm_lines),
            ));
        }
        Ok(())
    }
}

/// What kind of peripheral an instance is, plus its per-kind parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriphKind {
    /// GPIO controller (set/clear/toggle action lines, pin-0 rise event).
    Gpio,
    /// Periodic timer (compare event, start/stop action lines).
    Timer,
    /// SPI master with µDMA channel (end-of-transfer event).
    Spi {
        /// SPI cycles per transferred word.
        clkdiv: u32,
    },
    /// SAR ADC (conversion-done event).
    Adc {
        /// Cycles one conversion takes.
        conversion_cycles: u32,
    },
    /// UART (tx-done event).
    Uart,
    /// Watchdog (bite event, kick action line).
    Wdt,
    /// I2C master with an attached sensor device (done/nack events).
    I2c,
}

impl PeriphKind {
    /// The serialized kind name — also the instance's component name in
    /// traces and activity images.
    pub fn name(&self) -> &'static str {
        match self {
            PeriphKind::Gpio => "gpio",
            PeriphKind::Timer => "timer",
            PeriphKind::Spi { .. } => "spi",
            PeriphKind::Adc { .. } => "adc",
            PeriphKind::Uart => "uart",
            PeriphKind::Wdt => "wdt",
            PeriphKind::I2c => "i2c",
        }
    }
}

/// One peripheral instance: its kind and the APB slot it occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriphInst {
    /// The kind (with per-kind parameters).
    pub kind: PeriphKind,
    /// Byte offset of the instance's slot from the APB base. Must be a
    /// multiple of [`APB_STRIDE`] inside the APB window.
    pub offset: u32,
}

/// A validated, serializable description of one SoC: clock, PELS
/// geometry, analog source, fabric shape and the peripheral instances
/// with their memory-map slots.
///
/// `SocBuilder::from_desc` (in `pels-soc`) assembles exactly this; the
/// legacy setter API is a thin wrapper mutating one of these. JSON
/// round-trips are lossless: `SystemDesc::from_json(d.to_json()) == d`.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDesc {
    /// System clock.
    pub freq: Frequency,
    /// PELS geometry.
    pub pels: PelsDesc,
    /// The analog source behind the SPI/ADC/I2C front-ends.
    pub sensor: SensorKind,
    /// Fabric topology (shared APB vs per-slave crossbar).
    pub topology: Topology,
    /// Arbitration policy (round-robin vs fixed-priority).
    pub arbiter: ArbiterKind,
    /// Whether the timer compare event starts an SPI transfer (the
    /// autonomous-readout wiring of the paper's workload).
    pub timer_starts_spi: bool,
    /// Peripheral instances in assembly order. Validation requires
    /// exactly one of each kind on distinct stride-aligned slots.
    pub peripherals: Vec<PeriphInst>,
}

impl Default for SystemDesc {
    /// The paper's reference platform: 55 MHz, minimal PELS, a constant
    /// 2.5 V source, the canonical seven peripherals on their canonical
    /// slots (SPI clkdiv 4, 16-cycle ADC conversions).
    ///
    /// This is *the* single source of the defaults — `SocBuilder` and
    /// `ScenarioBuilder` both start from it, so the constants cannot
    /// drift apart.
    fn default() -> Self {
        SystemDesc {
            freq: Frequency::from_mhz(55.0),
            pels: PelsDesc::default(),
            sensor: SensorKind::Constant(2.5),
            topology: Topology::Shared,
            arbiter: ArbiterKind::RoundRobin,
            timer_starts_spi: true,
            peripherals: Self::canonical_peripherals(),
        }
    }
}

impl SystemDesc {
    /// The canonical seven peripheral instances on their canonical slots
    /// (the fixed wiring the pre-description `SocBuilder` hard-coded).
    pub fn canonical_peripherals() -> Vec<PeriphInst> {
        [
            PeriphKind::Gpio,
            PeriphKind::Timer,
            PeriphKind::Spi { clkdiv: 4 },
            PeriphKind::Adc {
                conversion_cycles: 16,
            },
            PeriphKind::Uart,
            PeriphKind::Wdt,
            PeriphKind::I2c,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, kind)| PeriphInst {
            kind,
            offset: i as u32 * APB_STRIDE,
        })
        .collect()
    }

    /// The first SPI instance's clock divider, or the default (4) when
    /// the description has no SPI instance (which never survives
    /// [`SystemDesc::validate`]).
    pub fn spi_clkdiv(&self) -> u32 {
        self.peripherals
            .iter()
            .find_map(|p| match p.kind {
                PeriphKind::Spi { clkdiv } => Some(clkdiv),
                _ => None,
            })
            .unwrap_or(4)
    }

    /// Points the first SPI instance at a new clock divider (no-op when
    /// the description has no SPI instance — validation reports that
    /// separately).
    pub fn set_spi_clkdiv(&mut self, clkdiv: u32) {
        for p in &mut self.peripherals {
            if let PeriphKind::Spi { clkdiv: c } = &mut p.kind {
                *c = clkdiv;
                return;
            }
        }
    }

    /// The first ADC instance's conversion latency, or the default (16)
    /// when the description has no ADC instance.
    pub fn adc_conversion_cycles(&self) -> u32 {
        self.peripherals
            .iter()
            .find_map(|p| match p.kind {
                PeriphKind::Adc { conversion_cycles } => Some(conversion_cycles),
                _ => None,
            })
            .unwrap_or(16)
    }

    /// Points the first ADC instance at a new conversion latency (no-op
    /// when the description has no ADC instance).
    pub fn set_adc_conversion_cycles(&mut self, cycles: u32) {
        for p in &mut self.peripherals {
            if let PeriphKind::Adc { conversion_cycles } = &mut p.kind {
                *conversion_cycles = cycles;
                return;
            }
        }
    }

    /// The APB slot offset of the first instance named `kind_name`, or
    /// the canonical offset when absent.
    fn offset_of(&self, kind_name: &str, fallback: u32) -> u32 {
        self.peripherals
            .iter()
            .find(|p| p.kind.name() == kind_name)
            .map(|p| p.offset)
            .unwrap_or(fallback)
    }

    /// The GPIO instance's APB slot offset.
    pub fn gpio_offset(&self) -> u32 {
        self.offset_of("gpio", GPIO_OFFSET)
    }

    /// The SPI instance's APB slot offset.
    pub fn spi_offset(&self) -> u32 {
        self.offset_of("spi", SPI_OFFSET)
    }

    /// Checks the description describes a buildable SoC.
    ///
    /// # Errors
    ///
    /// [`DescError`] with the JSON path of the first offending value:
    /// PELS geometry out of the modelled hardware range, a peripheral
    /// kind missing or duplicated, a slot off-stride / outside the APB
    /// window / doubly occupied, a zero SPI divider or ADC conversion
    /// latency, or a sensor seed too large for a JSON number.
    pub fn validate(&self) -> Result<(), DescError> {
        self.validate_at("")
    }

    /// [`SystemDesc::validate`] with every reported path prefixed by
    /// `base` — how a nested description (e.g. under `/system`) reports
    /// in its host document's coordinates.
    pub fn validate_at(&self, base: &str) -> Result<(), DescError> {
        self.pels.validate_at(base)?;
        if let SensorKind::NoisyRamp { seed, .. } = self.sensor {
            if seed > (1u64 << 53) {
                return Err(DescError::new(
                    format!("{base}/sensor/seed"),
                    "seed must fit a JSON number exactly (at most 2^53)",
                ));
            }
        }
        let mut seen_kinds: Vec<&'static str> = Vec::new();
        let mut seen_offsets: Vec<u32> = Vec::new();
        for (i, p) in self.peripherals.iter().enumerate() {
            let name = p.kind.name();
            if seen_kinds.contains(&name) {
                return Err(DescError::new(
                    format!("{base}/peripherals/{i}/kind"),
                    format!("duplicate peripheral kind `{name}`"),
                ));
            }
            seen_kinds.push(name);
            if p.offset % APB_STRIDE != 0 {
                return Err(DescError::new(
                    format!("{base}/peripherals/{i}/offset"),
                    format!(
                        "offset {} is not a multiple of the {APB_STRIDE}-byte APB stride",
                        p.offset
                    ),
                ));
            }
            if p.offset >= APB_SIZE {
                return Err(DescError::new(
                    format!("{base}/peripherals/{i}/offset"),
                    format!(
                        "offset {} lies outside the {APB_SIZE}-byte APB window",
                        p.offset
                    ),
                ));
            }
            if seen_offsets.contains(&p.offset) {
                return Err(DescError::new(
                    format!("{base}/peripherals/{i}/offset"),
                    format!("APB slot {} is already occupied", p.offset),
                ));
            }
            seen_offsets.push(p.offset);
            match p.kind {
                PeriphKind::Spi { clkdiv: 0 } => {
                    return Err(DescError::new(
                        format!("{base}/peripherals/{i}/clkdiv"),
                        "clkdiv must be at least 1",
                    ));
                }
                PeriphKind::Adc { conversion_cycles: 0 } => {
                    return Err(DescError::new(
                        format!("{base}/peripherals/{i}/conversion_cycles"),
                        "conversion_cycles must be at least 1",
                    ));
                }
                _ => {}
            }
        }
        for required in ["gpio", "timer", "spi", "adc", "uart", "wdt", "i2c"] {
            if !seen_kinds.contains(&required) {
                return Err(DescError::new(
                    format!("{base}/peripherals"),
                    format!("missing peripheral kind `{required}`"),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_desc_validates_and_matches_pels_config() {
        let d = SystemDesc::default();
        d.validate().expect("default desc is valid");
        assert_eq!(PelsDesc::default().to_config(), PelsConfig::default());
        assert_eq!(d.spi_clkdiv(), 4);
        assert_eq!(d.adc_conversion_cycles(), 16);
        assert_eq!(d.gpio_offset(), GPIO_OFFSET);
        assert_eq!(d.spi_offset(), SPI_OFFSET);
    }

    #[test]
    fn validate_pins_paths() {
        let mut d = SystemDesc::default();
        d.pels.links = 0;
        let e = d.validate().unwrap_err();
        assert_eq!(e.path, "/pels/links");

        let mut d = SystemDesc::default();
        d.pels.scm_lines = 513;
        let e = d.validate_at("/system").unwrap_err();
        assert_eq!(e.path, "/system/pels/scm_lines");

        let mut d = SystemDesc::default();
        d.set_spi_clkdiv(0);
        let e = d.validate().unwrap_err();
        assert_eq!(e.path, "/peripherals/2/clkdiv");

        let mut d = SystemDesc::default();
        d.peripherals[3].offset = d.peripherals[6].offset;
        let e = d.validate().unwrap_err();
        assert_eq!(e.path, "/peripherals/6/offset");
        assert!(e.message.contains("already occupied"), "{e}");

        let mut d = SystemDesc::default();
        d.peripherals[1].offset = 12;
        let e = d.validate().unwrap_err();
        assert_eq!(e.path, "/peripherals/1/offset");

        let mut d = SystemDesc::default();
        d.peripherals.remove(4);
        let e = d.validate().unwrap_err();
        assert_eq!(e.path, "/peripherals");
        assert!(e.message.contains("`uart`"), "{e}");

        let mut d = SystemDesc::default();
        d.peripherals[0].kind = PeriphKind::Timer;
        let e = d.validate().unwrap_err();
        assert_eq!(e.path, "/peripherals/1/kind");
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn setters_target_the_parameterized_kinds() {
        let mut d = SystemDesc::default();
        d.set_spi_clkdiv(9);
        d.set_adc_conversion_cycles(3);
        assert_eq!(d.spi_clkdiv(), 9);
        assert_eq!(d.adc_conversion_cycles(), 3);
    }
}
