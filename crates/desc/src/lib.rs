//! # pels-desc — declarative system and scenario descriptions
//!
//! The construction API of the simulator: a validated, serializable
//! [`SystemDesc`] (clock plan, PELS geometry, peripheral instances with
//! per-kind parameters, memory-map slots, fabric shape) and
//! [`ScenarioDesc`] (mediator, stimulus, events, execution mode,
//! observability) that everything else builds from.
//!
//! * `SocBuilder::from_desc` / `Scenario::from_desc` (in `pels-soc`) are
//!   the canonical entry points; the legacy setter APIs are thin wrappers
//!   mutating a description.
//! * [`SystemDesc::from_json`] / [`SystemDesc::to_json`] (and the
//!   `ScenarioDesc` pair) round-trip losslessly through the in-repo
//!   [`pels_obs::json`] parser — `from_json(d.to_json()) == d` for every
//!   valid description. No external dependencies.
//! * Validation is structural and eager, and every failure is a
//!   [`DescError`] carrying the JSON path of the offending value
//!   (`/peripherals/2/kind`), so a description file error points at the
//!   line that needs fixing.
//! * [`DescFuzzer`] generates bounded random descriptions (plus seeded
//!   invalid mutations) for the generate → validate → fast-vs-naive
//!   differential loop in `tests/desc_fuzz.rs`.
//!
//! See `DESIGN.md` §11 for the schema reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod fuzz;
pub mod kinds;
pub mod mem_map;
pub mod scenario;
pub mod system;

pub use codec::SCHEMA_VERSION;
pub use error::DescError;
pub use fuzz::{DescFuzzer, FuzzCase};
pub use kinds::{ExecMode, Mediator, SensorKind};
pub use scenario::ScenarioDesc;
pub use system::{PelsDesc, PeriphInst, PeriphKind, SystemDesc};
