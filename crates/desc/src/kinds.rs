//! The enumerated description axes: analog source, mediator, execution
//! mode.

use pels_periph::sensor::{Composite, Constant, GaussianNoise, Quantizer, Ramp, Sine};
use pels_sim::SimTime;
use std::fmt;

/// The synthetic analog source behind the SPI/ADC front-ends.
///
/// Substitutes the paper's thermistor/varistor (see `DESIGN.md`): each
/// variant exercises the same digital code path with controllable
/// threshold-crossing behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorKind {
    /// A fixed level (always above/below threshold — used for the
    /// repeatable latency/power measurements).
    Constant(f64),
    /// A linear ramp crossing the threshold at a known time.
    Ramp {
        /// Level at time zero.
        start: f64,
        /// Volts per simulated microsecond.
        slope_per_us: f64,
    },
    /// A ramp with Gaussian measurement noise (seeded, reproducible).
    NoisyRamp {
        /// Level at time zero.
        start: f64,
        /// Volts per simulated microsecond.
        slope_per_us: f64,
        /// Noise standard deviation.
        sigma: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A sine wave (periodic threshold crossings).
    Sine {
        /// Mid level.
        offset: f64,
        /// Peak deviation.
        amplitude: f64,
        /// Frequency in Hz.
        freq_hz: f64,
    },
}

impl SensorKind {
    /// Builds the 12-bit, 0–3.3 V quantized front-end.
    pub fn quantizer(&self) -> Quantizer {
        let source: Box<dyn pels_periph::AnalogSource> = match *self {
            SensorKind::Constant(v) => Box::new(Constant(v)),
            SensorKind::Ramp { start, slope_per_us } => Box::new(Ramp {
                start,
                slope_per_us,
            }),
            SensorKind::NoisyRamp {
                start,
                slope_per_us,
                sigma,
                seed,
            } => Box::new(Composite::new(vec![
                Box::new(Ramp {
                    start,
                    slope_per_us,
                }),
                Box::new(GaussianNoise::new(sigma, seed)),
            ])),
            SensorKind::Sine {
                offset,
                amplitude,
                freq_hz,
            } => Box::new(Sine {
                offset,
                amplitude,
                freq_hz,
            }),
        };
        Quantizer::new(source, 12, 0.0, 3.3)
    }

    /// The 12-bit code a given analog level quantizes to (for choosing
    /// thresholds).
    pub fn code_for_level(level: f64) -> u32 {
        let mut q = Quantizer::new(Box::new(Constant(level)), 12, 0.0, 3.3);
        q.convert(SimTime::ZERO)
    }
}

/// Who mediates the linking event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mediator {
    /// PELS issues the actuation over the interconnect (sequenced
    /// action).
    PelsSequenced,
    /// PELS actuates through a single-wire event line (instant action).
    PelsInstant,
    /// The Ibex-class core handles an interrupt (the paper's baseline).
    IbexIrq,
}

impl Mediator {
    /// The serialized name (also the `Display` form).
    pub fn name(&self) -> &'static str {
        match self {
            Mediator::PelsSequenced => "pels-sequenced",
            Mediator::PelsInstant => "pels-instant",
            Mediator::IbexIrq => "ibex-irq",
        }
    }

    /// Parses a serialized name back into the mediator.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "pels-sequenced" => Some(Mediator::PelsSequenced),
            "pels-instant" => Some(Mediator::PelsInstant),
            "ibex-irq" => Some(Mediator::IbexIrq),
            _ => None,
        }
    }
}

impl fmt::Display for Mediator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which simulation path a scenario runs on.
///
/// All three are observationally identical — same traces, latencies,
/// activity and architectural state (the differential suites in
/// `tests/active_path.rs` and `tests/desc_fuzz.rs` prove it) — and differ
/// only in speed. The slower modes exist *for* those differential tests
/// and for before/after benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Every accelerator on: decode cache, active-slave scheduling,
    /// quiescence skipping and CPU superblock execution.
    #[default]
    Fast,
    /// Superblock execution off (the CPU retires one instruction per
    /// scheduler visit), everything else on — the reference point of the
    /// superblock differential suite.
    SingleStep,
    /// The naive reference path: every peripheral ticks every cycle, no
    /// decode cache, no superblocks.
    Naive,
}

impl ExecMode {
    /// The serialized name (also the `Display` form).
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Fast => "fast",
            ExecMode::SingleStep => "single-step",
            ExecMode::Naive => "naive",
        }
    }

    /// Parses a serialized name back into the mode.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "fast" => Some(ExecMode::Fast),
            "single-step" => Some(ExecMode::SingleStep),
            "naive" => Some(ExecMode::Naive),
            _ => None,
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensor_kinds_build_quantizers() {
        for kind in [
            SensorKind::Constant(1.0),
            SensorKind::Ramp {
                start: 0.0,
                slope_per_us: 0.1,
            },
            SensorKind::NoisyRamp {
                start: 0.0,
                slope_per_us: 0.1,
                sigma: 0.05,
                seed: 7,
            },
            SensorKind::Sine {
                offset: 1.6,
                amplitude: 1.0,
                freq_hz: 1e4,
            },
        ] {
            let mut q = kind.quantizer();
            let _ = q.convert(SimTime::ZERO);
        }
        assert_eq!(SensorKind::code_for_level(3.3), 4095);
        assert_eq!(SensorKind::code_for_level(0.0), 0);
    }

    #[test]
    fn names_round_trip() {
        for m in [
            Mediator::PelsSequenced,
            Mediator::PelsInstant,
            Mediator::IbexIrq,
        ] {
            assert_eq!(Mediator::from_name(m.name()), Some(m));
        }
        for e in [ExecMode::Fast, ExecMode::SingleStep, ExecMode::Naive] {
            assert_eq!(ExecMode::from_name(e.name()), Some(e));
        }
        assert_eq!(Mediator::from_name("dma"), None);
        assert_eq!(ExecMode::from_name("turbo"), None);
    }
}
