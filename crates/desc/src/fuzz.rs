//! A seeded topology fuzzer: generates random (but bounded)
//! [`ScenarioDesc`]s for the validate → round-trip → fast-vs-naive
//! differential loop in `tests/desc_fuzz.rs`.
//!
//! Roughly one case in eight carries a deliberate invalid mutation
//! (zero events, zero clkdiv, out-of-range link count, a duplicated or
//! misaligned APB slot, …) so the rejection paths are exercised too.
//! Everything is driven by the in-repo [`pels_sim::Rng`], so a seed
//! pins the whole corpus.

use crate::kinds::{Mediator, SensorKind};
use crate::mem_map::APB_STRIDE;
use crate::scenario::ScenarioDesc;
use pels_interconnect::{ArbiterKind, Topology};
use pels_sim::{Frequency, Rng, SimTime};

/// One fuzzer draw.
#[derive(Debug, Clone)]
pub enum FuzzCase {
    /// A description that must pass [`ScenarioDesc::validate`], survive a
    /// JSON round-trip bit-identically, and run identically on the fast
    /// and naive paths.
    Valid(ScenarioDesc),
    /// A description that must be rejected by [`ScenarioDesc::validate`]
    /// with a non-empty JSON path.
    Invalid {
        /// The broken description.
        desc: ScenarioDesc,
        /// Which mutation was injected (for failure diagnostics).
        broke: &'static str,
    },
}

/// The seeded description generator.
#[derive(Debug)]
pub struct DescFuzzer {
    rng: Rng,
}

impl DescFuzzer {
    /// A fuzzer whose whole output stream is pinned by `seed`.
    pub fn new(seed: u64) -> Self {
        DescFuzzer {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Draws the next case.
    pub fn next_case(&mut self) -> FuzzCase {
        let desc = self.gen_valid();
        if self.rng.ratio(1, 8) {
            let (desc, broke) = self.break_one(desc);
            FuzzCase::Invalid { desc, broke }
        } else {
            FuzzCase::Valid(desc)
        }
    }

    /// A random description inside every modelled bound: any mediator and
    /// fabric shape, permuted APB slots, 1–8 links, 4–16 SCM lines,
    /// 20–200 MHz. The stimulus is arranged so every readout actuates
    /// (a constant level above threshold, or the always-actuating
    /// single-RMW program), keeping the differential measurable.
    fn gen_valid(&mut self) -> ScenarioDesc {
        let mut desc = ScenarioDesc::default();
        let system = &mut desc.system;
        system.freq = Frequency::from_period_ps(self.rng.range_u64(5_000, 50_000));
        system.pels.links = self.rng.range_u64(1, 8) as usize;
        system.pels.scm_lines = self.rng.range_u64(4, 16) as usize;
        system.pels.fifo_depth = self.rng.range_u64(1, 8) as usize;
        system.topology = if self.rng.bool() {
            Topology::Shared
        } else {
            Topology::PerSlaveCrossbar
        };
        system.arbiter = if self.rng.bool() {
            ArbiterKind::RoundRobin
        } else {
            ArbiterKind::FixedPriority
        };

        // Shuffle the seven instances across the seven canonical slots.
        let n = system.peripherals.len();
        for i in (1..n).rev() {
            let j = self.rng.index(i + 1);
            let (a, b) = (system.peripherals[i].offset, system.peripherals[j].offset);
            system.peripherals[i].offset = b;
            system.peripherals[j].offset = a;
        }
        debug_assert!(system
            .peripherals
            .iter()
            .all(|p| p.offset % APB_STRIDE == 0));
        system.set_spi_clkdiv(self.rng.range_u64(1, 4) as u32);
        system.set_adc_conversion_cycles(self.rng.range_u64(4, 32) as u32);

        desc.mediator = match self.rng.index(3) {
            0 => Mediator::PelsSequenced,
            1 => Mediator::PelsInstant,
            _ => Mediator::IbexIrq,
        };
        desc.events = self.rng.range_u64(1, 4) as u32;
        desc.spi_words = self.rng.range_u64(1, 2) as u32;
        // Express the sample period in whole cycles of the drawn clock so
        // every readout chain comfortably fits one period.
        let cycles = self.rng.range_u64(96, 256);
        desc.sample_period = SimTime::from_ps(cycles * desc.system.freq.period_ps());
        desc.threshold_level = self.rng.range_u64(5, 30) as f64 / 10.0;

        // Flow tracing is pure observation; sprinkling it over the corpus
        // keeps the decoder's optional-key path and the invariance claim
        // exercised by the differential fuzzer.
        desc.flows = self.rng.ratio(1, 4);
        // The energy ledger is likewise pure observation; sampling it
        // keeps the optional `lifetime` key and its invariance claim in
        // the differential corpus.
        desc.lifetime = self.rng.ratio(1, 4);

        let pels_mediated = desc.mediator != Mediator::IbexIrq;
        if pels_mediated && self.rng.ratio(1, 4) {
            // The single-RMW program actuates on every trigger, so any
            // stimulus shape is measurable.
            desc.rmw_only = true;
            desc.system.sensor = match self.rng.index(4) {
                0 => SensorKind::Ramp {
                    start: 0.2,
                    slope_per_us: self.rng.range_u64(1, 5) as f64 / 10.0,
                },
                1 => SensorKind::NoisyRamp {
                    start: 0.2,
                    slope_per_us: self.rng.range_u64(1, 5) as f64 / 10.0,
                    sigma: 0.05,
                    seed: u64::from(self.rng.next_u32()),
                },
                2 => SensorKind::Sine {
                    offset: 1.6,
                    amplitude: self.rng.range_u64(1, 10) as f64 / 10.0,
                    freq_hz: self.rng.range_u64(10_000, 1_000_000) as f64,
                },
                _ => SensorKind::Constant(self.rng.range_u64(0, 33) as f64 / 10.0),
            };
        } else {
            // Threshold-check program: hold the level above threshold so
            // every readout actuates.
            desc.system.sensor = SensorKind::Constant(desc.threshold_level + 0.3);
        }
        desc
    }

    /// Injects one invalid mutation that [`ScenarioDesc::validate`] must
    /// catch.
    fn break_one(&mut self, mut desc: ScenarioDesc) -> (ScenarioDesc, &'static str) {
        let broke = match self.rng.index(8) {
            0 => {
                desc.events = 0;
                "events = 0"
            }
            1 => {
                desc.system.set_spi_clkdiv(0);
                "spi clkdiv = 0"
            }
            2 => {
                desc.system.pels.links = 0;
                "links = 0"
            }
            3 => {
                desc.system.pels.links = 65;
                "links = 65"
            }
            4 => {
                desc.system.peripherals[6].offset = desc.system.peripherals[0].offset;
                "duplicate APB slot"
            }
            5 => {
                desc.system.peripherals[3].offset += 12;
                "misaligned APB slot"
            }
            6 => {
                desc.sample_period = SimTime::ZERO;
                "sample_period = 0"
            }
            _ => {
                desc.system.pels.scm_lines = 513;
                "scm_lines = 513"
            }
        };
        (desc, broke)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzer_is_deterministic_and_mixes_cases() {
        let mut a = DescFuzzer::new(42);
        let mut b = DescFuzzer::new(42);
        let (mut valid, mut invalid) = (0, 0);
        for _ in 0..64 {
            let (ca, cb) = (a.next_case(), b.next_case());
            match (&ca, &cb) {
                (FuzzCase::Valid(da), FuzzCase::Valid(db)) => {
                    assert_eq!(da, db);
                    da.validate().expect("generated desc must validate");
                    valid += 1;
                }
                (
                    FuzzCase::Invalid { desc: da, broke },
                    FuzzCase::Invalid { desc: db, .. },
                ) => {
                    assert_eq!(da, db);
                    let e = da.validate().expect_err(broke);
                    assert!(!e.path.is_empty(), "{broke}: {e}");
                    invalid += 1;
                }
                _ => panic!("same seed drew different case kinds"),
            }
        }
        assert!(valid >= 40, "only {valid} valid cases in 64 draws");
        assert!(invalid >= 2, "only {invalid} invalid cases in 64 draws");
    }
}
