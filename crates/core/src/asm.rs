//! A small textual assembler for PELS microcode.
//!
//! The paper presents linking programs as pseudocode (Figure 3); this
//! assembler accepts essentially that syntax so examples and tests read
//! like the paper:
//!
//! ```text
//! ; threshold-triggered actuation (Figure 3)
//! check:
//!     capture 6, 0xFFF        ; read masked sensor sample
//!     jump-if geu, @above, 2000
//!     halt
//! above:
//!     action pulse, 0, 0x100  ; instant action on line 8
//! ```
//!
//! * one command per line; `;` or `#` start a comment;
//! * `label:` defines an SCM line label, `@label` references it in
//!   `jump-if`/`loop` targets (raw line numbers also accepted);
//! * numbers are decimal or `0x`-prefixed hex.

use crate::command::{ActionMode, Command, Cond};
use crate::program::{Program, ProgramError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Assembly failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// Classification of an [`AsmError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownMnemonic(String),
    /// Wrong operand count for the mnemonic.
    OperandCount {
        /// The mnemonic.
        mnemonic: String,
        /// Operands expected.
        expected: usize,
        /// Operands found.
        found: usize,
    },
    /// An operand did not parse as a number.
    BadNumber(String),
    /// Unknown condition code.
    BadCond(String),
    /// Unknown action mode.
    BadMode(String),
    /// A `@label` reference without a definition.
    UndefinedLabel(String),
    /// The same label defined twice.
    DuplicateLabel(String),
    /// The assembled program failed validation.
    Program(ProgramError),
    /// A value exceeded its field range.
    Range(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::OperandCount {
                mnemonic,
                expected,
                found,
            } => write!(f, "`{mnemonic}` takes {expected} operands, found {found}"),
            AsmErrorKind::BadNumber(s) => write!(f, "`{s}` is not a number"),
            AsmErrorKind::BadCond(s) => write!(f, "`{s}` is not a condition"),
            AsmErrorKind::BadMode(s) => write!(f, "`{s}` is not an action mode"),
            AsmErrorKind::UndefinedLabel(s) => write!(f, "undefined label `{s}`"),
            AsmErrorKind::DuplicateLabel(s) => write!(f, "duplicate label `{s}`"),
            AsmErrorKind::Program(e) => write!(f, "{e}"),
            AsmErrorKind::Range(s) => write!(f, "{s}"),
        }
    }
}

impl Error for AsmError {}

fn parse_u32(tok: &str, line: usize) -> Result<u32, AsmError> {
    let tok = tok.trim();
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::BadNumber(tok.to_owned()),
    })
}

fn parse_u16_field(tok: &str, line: usize, what: &str) -> Result<u16, AsmError> {
    let v = parse_u32(tok, line)?;
    u16::try_from(v).map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::Range(format!("{what} {v} out of range")),
    })
}

fn parse_target(
    tok: &str,
    labels: &HashMap<String, u16>,
    line: usize,
) -> Result<u16, AsmError> {
    let tok = tok.trim();
    if let Some(name) = tok.strip_prefix('@') {
        labels.get(name).copied().ok_or_else(|| AsmError {
            line,
            kind: AsmErrorKind::UndefinedLabel(name.to_owned()),
        })
    } else {
        parse_u16_field(tok, line, "target")
    }
}

fn parse_cond(tok: &str, line: usize) -> Result<Cond, AsmError> {
    Ok(match tok.trim().to_ascii_lowercase().as_str() {
        "eq" => Cond::Eq,
        "ne" => Cond::Ne,
        "ltu" => Cond::LtU,
        "geu" => Cond::GeU,
        "lts" => Cond::LtS,
        "ges" => Cond::GeS,
        other => {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::BadCond(other.to_owned()),
            })
        }
    })
}

fn parse_mode(tok: &str, line: usize) -> Result<ActionMode, AsmError> {
    Ok(match tok.trim().to_ascii_lowercase().as_str() {
        "pulse" => ActionMode::Pulse,
        "set" => ActionMode::Set,
        "clear" => ActionMode::Clear,
        "toggle" => ActionMode::Toggle,
        other => {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::BadMode(other.to_owned()),
            })
        }
    })
}

struct SourceLine<'a> {
    number: usize,
    mnemonic: &'a str,
    operands: Vec<&'a str>,
}

/// Strips comments/labels and collects `(line, mnemonic, operands)` plus
/// the label table.
fn scan(source: &str) -> Result<(Vec<SourceLine<'_>>, HashMap<String, u16>), AsmError> {
    let mut lines = Vec::new();
    let mut labels = HashMap::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find([';', '#']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // Leading labels (possibly several on one line).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels
                .insert(label.to_owned(), lines.len() as u16)
                .is_some()
            {
                return Err(AsmError {
                    line: number,
                    kind: AsmErrorKind::DuplicateLabel(label.to_owned()),
                });
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = text
            .split_once(char::is_whitespace)
            .unwrap_or((text, ""));
        let operands: Vec<&str> = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        lines.push(SourceLine {
            number,
            mnemonic,
            operands,
        });
    }
    Ok((lines, labels))
}

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending 1-based line on syntax errors,
/// undefined labels, out-of-range fields, or program-level validation
/// failures.
///
/// ```
/// use pels_core::assemble;
/// let p = assemble(
///     "check: capture 6, 0xFFF
///             jump-if geu, @hit, 2000
///             halt
///      hit:   action pulse, 0, 0x100",
/// )?;
/// assert_eq!(p.len(), 4);
/// # Ok::<(), pels_core::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let (lines, labels) = scan(source)?;
    let mut commands = Vec::with_capacity(lines.len());
    for l in &lines {
        let expect = |n: usize| -> Result<(), AsmError> {
            if l.operands.len() == n {
                Ok(())
            } else {
                Err(AsmError {
                    line: l.number,
                    kind: AsmErrorKind::OperandCount {
                        mnemonic: l.mnemonic.to_owned(),
                        expected: n,
                        found: l.operands.len(),
                    },
                })
            }
        };
        let cmd = match l.mnemonic.to_ascii_lowercase().as_str() {
            "nop" => {
                expect(0)?;
                Command::Nop
            }
            "halt" => {
                expect(0)?;
                Command::Halt
            }
            "write" => {
                expect(2)?;
                Command::Write {
                    offset: parse_u16_field(l.operands[0], l.number, "offset")?,
                    value: parse_u32(l.operands[1], l.number)?,
                }
            }
            "set" => {
                expect(2)?;
                Command::Set {
                    offset: parse_u16_field(l.operands[0], l.number, "offset")?,
                    mask: parse_u32(l.operands[1], l.number)?,
                }
            }
            "clear" => {
                expect(2)?;
                Command::Clear {
                    offset: parse_u16_field(l.operands[0], l.number, "offset")?,
                    mask: parse_u32(l.operands[1], l.number)?,
                }
            }
            "toggle" => {
                expect(2)?;
                Command::Toggle {
                    offset: parse_u16_field(l.operands[0], l.number, "offset")?,
                    mask: parse_u32(l.operands[1], l.number)?,
                }
            }
            "capture" => {
                expect(2)?;
                Command::Capture {
                    offset: parse_u16_field(l.operands[0], l.number, "offset")?,
                    mask: parse_u32(l.operands[1], l.number)?,
                }
            }
            "jump-if" | "jumpif" => {
                expect(3)?;
                Command::JumpIf {
                    cond: parse_cond(l.operands[0], l.number)?,
                    target: parse_target(l.operands[1], &labels, l.number)?,
                    operand: parse_u32(l.operands[2], l.number)?,
                }
            }
            "loop" => {
                expect(2)?;
                Command::Loop {
                    target: parse_target(l.operands[0], &labels, l.number)?,
                    count: parse_u32(l.operands[1], l.number)?,
                }
            }
            "wait" => {
                expect(1)?;
                Command::Wait {
                    cycles: parse_u32(l.operands[0], l.number)?,
                }
            }
            "action" => {
                expect(3)?;
                let group = parse_u32(l.operands[1], l.number)?;
                Command::Action {
                    mode: parse_mode(l.operands[0], l.number)?,
                    group: u8::try_from(group).map_err(|_| AsmError {
                        line: l.number,
                        kind: AsmErrorKind::Range(format!("group {group} out of range")),
                    })?,
                    mask: parse_u32(l.operands[2], l.number)?,
                }
            }
            other => {
                return Err(AsmError {
                    line: l.number,
                    kind: AsmErrorKind::UnknownMnemonic(other.to_owned()),
                })
            }
        };
        commands.push(cmd);
    }
    Program::new(commands).map_err(|e| AsmError {
        line: 0,
        kind: AsmErrorKind::Program(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_figure_3_program() {
        let p = assemble(
            "; Figure 3, instant-action flavour
             check:
                 capture 6, 0xFFF
                 jump-if geu, @above, 2000
                 halt
             above:
                 action pulse, 0, 0x100",
        )
        .unwrap();
        assert_eq!(
            p.commands()[0],
            Command::Capture { offset: 6, mask: 0xFFF }
        );
        assert_eq!(
            p.commands()[1],
            Command::JumpIf {
                cond: Cond::GeU,
                target: 3,
                operand: 2000
            }
        );
        assert_eq!(p.commands()[2], Command::Halt);
        assert_eq!(
            p.commands()[3],
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 0x100
            }
        );
    }

    #[test]
    fn all_mnemonics_assemble() {
        let p = assemble(
            "nop
             write 1, 2
             set 1, 2
             clear 1, 2
             toggle 1, 2
             capture 1, 2
             jump-if eq, 0, 5
             loop 0, 3
             wait 10
             action set, 1, 0xFF
             halt",
        )
        .unwrap();
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn numeric_targets_and_hex() {
        let p = assemble("jump-if ne, 1, 0xDEAD\nhalt").unwrap();
        assert_eq!(
            p.commands()[0],
            Command::JumpIf {
                cond: Cond::Ne,
                target: 1,
                operand: 0xDEAD
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# hash comment\n\n  ; semicolon comment\nhalt ; trailing").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nfrobnicate 1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn operand_count_checked() {
        let e = assemble("write 1").unwrap_err();
        assert!(matches!(
            e.kind,
            AsmErrorKind::OperandCount { expected: 2, found: 1, .. }
        ));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble("jump-if eq, @nowhere, 0").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UndefinedLabel(_)));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: halt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn bad_number_and_cond_and_mode() {
        assert!(matches!(
            assemble("wait banana").unwrap_err().kind,
            AsmErrorKind::BadNumber(_)
        ));
        assert!(matches!(
            assemble("jump-if zz, 0, 0\nhalt").unwrap_err().kind,
            AsmErrorKind::BadCond(_)
        ));
        assert!(matches!(
            assemble("action blink, 0, 1").unwrap_err().kind,
            AsmErrorKind::BadMode(_)
        ));
    }

    #[test]
    fn program_validation_surfaces() {
        let e = assemble("jump-if eq, 9, 0\nhalt").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::Program(_)));
    }

    #[test]
    fn label_on_same_line_as_command() {
        let p = assemble("top: action toggle, 0, 1\nloop @top, 2").unwrap();
        assert_eq!(
            p.commands()[1],
            Command::Loop { target: 0, count: 2 }
        );
    }
}
