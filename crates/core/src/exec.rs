//! The per-link execution unit (paper Figure 2, blocks ④–⑨).
//!
//! ## Cycle accounting
//!
//! The FSM reproduces the latencies the paper reports (Figure 3 and
//! Section IV-B), with the event cycle counted as cycle 0:
//!
//! | stage                             | cycles | paper |
//! |-----------------------------------|--------|-------|
//! | trigger → first command executing | 2      | "one clock cycle after a successful triggering condition, the execution unit receives the first command" |
//! | `action` (instant)                | pulse visible at cycle 2 | 2 |
//! | `capture` (masked read)           | 3      | 3     |
//! | `jump-if`                         | 1      | 1     |
//! | read-modify-write (`set`/…)       | effect observable at cycle 7 | 7 |
//!
//! The sequenced timings derive from the APB fabric: issue at *N* → setup
//! *N*, access/commit *N*+1, response registered at the master for cycle
//! *N*+2; the modified value is written back "one cycle after the read
//! succeeds" (paper Section III-1c).

use crate::command::{ActionMode, Command};
use crate::scm::Scm;
use crate::trigger::TriggerUnit;
use pels_sim::{ComponentId, EventVector, SimTime, Trace};

/// The bus port a link masters sequenced actions on.
///
/// Implemented by the SoC over an `ApbFabric` master port; a transaction
/// issued in one cycle completes via [`LinkBus::take_response`] some
/// cycles later (arbitration + wait states included).
pub trait LinkBus {
    /// Whether a new transaction can be issued this cycle.
    fn can_issue(&self) -> bool;

    /// Issues a read of `addr`. Returns `false` when the port is busy.
    fn issue_read(&mut self, addr: u32) -> bool;

    /// Issues a write of `value` to `addr`. Returns `false` when busy.
    fn issue_write(&mut self, addr: u32, value: u32) -> bool;

    /// Takes the completed response: `Ok(rdata)` or `Err(())` on a bus
    /// error.
    fn take_response(&mut self) -> Option<Result<u32, ()>>;
}

/// The 64 outgoing single-wire event lines, shared by all links of a PELS
/// instance.
///
/// `Pulse` actions are visible for the cycle they execute in; `Set` /
/// `Clear` / `Toggle` actions latch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActionLines {
    latched: EventVector,
    pulses: EventVector,
}

impl ActionLines {
    /// Creates all-low lines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies an `action` command to the lines of `group`.
    pub fn apply(&mut self, mode: ActionMode, group: u8, mask: u32) {
        let bits = u64::from(mask) << (32 * u64::from(group & 1));
        let vec = EventVector::from_bits(bits);
        match mode {
            ActionMode::Pulse => self.pulses |= vec,
            ActionMode::Set => self.latched |= vec,
            ActionMode::Clear => self.latched = self.latched & !vec,
            ActionMode::Toggle => {
                self.latched = EventVector::from_bits(self.latched.bits() ^ vec.bits())
            }
        }
    }

    /// The lines as visible this cycle (latched levels + pulses).
    pub fn current(&self) -> EventVector {
        self.latched | self.pulses
    }

    /// Latched levels only.
    pub fn latched(&self) -> EventVector {
        self.latched
    }

    /// Whether no one-cycle pulse is currently raised (the image is pure
    /// latched levels and therefore stable across idle cycles).
    pub fn pulses_clear(&self) -> bool {
        self.pulses.is_empty()
    }

    /// Clears the one-cycle pulses (called by the PELS top at the end of
    /// each cycle).
    pub fn end_cycle(&mut self) {
        self.pulses = EventVector::EMPTY;
    }
}

/// Per-cycle context handed to [`ExecutionUnit::step`].
pub struct ExecCtx<'a> {
    /// Cycle index.
    pub cycle: u64,
    /// Simulation time at this cycle.
    pub time: SimTime,
    /// The link's bus master port.
    pub bus: &'a mut dyn LinkBus,
    /// The shared outgoing action lines.
    pub actions: &'a mut ActionLines,
    /// Trace sink.
    pub trace: &'a mut Trace,
    /// Trace source id (e.g. the interned `pels.link0`).
    pub id: ComponentId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    /// SCM fetch in flight (initial cycle after trigger, and redirect
    /// bubbles).
    Fetch,
    /// Extra fetch stall for the SCM-vs-shared-SRAM ablation: commands
    /// fetched over the system bus pay this before executing.
    FetchStall { remaining: u32 },
    /// Executing the command at `pc` (fetch is pipelined).
    Execute,
    /// A sequenced read is in flight.
    ReadWait { cmd: Command },
    /// The modify cycle of an RMW: write issues here.
    WriteTurn { cmd: Command, rdata: u32 },
    /// A sequenced write is in flight.
    WriteWait,
    /// `wait` command counting down.
    Waiting { remaining: u32 },
}

/// Execution statistics exposed for measurements and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Commands executed.
    pub commands: u64,
    /// Cycles the unit was not idle.
    pub busy_cycles: u64,
    /// Trigger tokens serviced.
    pub triggers_serviced: u64,
    /// Sequenced transactions that returned a bus error.
    pub bus_errors: u64,
}

/// The command-execution FSM of one link.
#[derive(Debug)]
pub struct ExecutionUnit {
    state: State,
    pc: usize,
    dpr: u32,
    base: u32,
    loop_counter: Option<u32>,
    fetch_stall: u32,
    stats: ExecStats,
}

impl Default for ExecutionUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionUnit {
    /// Creates an idle unit with base address 0.
    pub fn new() -> Self {
        ExecutionUnit {
            state: State::Idle,
            pc: 0,
            dpr: 0,
            base: 0,
            loop_counter: None,
            fetch_stall: 0,
            stats: ExecStats::default(),
        }
    }

    /// Adds `cycles` of stall before every command execution — models
    /// fetching microcode from shared memory over the bus instead of the
    /// private SCM (the ablation of the paper's Section III-1b design
    /// choice). Zero (the default) is the paper's SCM design.
    pub fn set_fetch_stall(&mut self, cycles: u32) {
        self.fetch_stall = cycles;
    }

    /// The configured per-fetch stall.
    pub fn fetch_stall(&self) -> u32 {
        self.fetch_stall
    }

    /// Sets the base address sequenced-action offsets are relative to.
    pub fn set_base(&mut self, base: u32) {
        self.base = base;
    }

    /// The configured base address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Whether the unit is processing a trigger.
    pub fn is_busy(&self) -> bool {
        self.state != State::Idle
    }

    /// Current program counter (SCM line).
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// The datapath register (last `capture` result).
    pub fn dpr(&self) -> u32 {
        self.dpr
    }

    /// Execution statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resets the unit to idle (does not clear statistics).
    pub fn reset(&mut self) {
        self.state = State::Idle;
        self.pc = 0;
        self.loop_counter = None;
    }

    fn addr_of(&self, offset: u16) -> u32 {
        self.base.wrapping_add(u32::from(offset) * 4)
    }

    fn finish_program(&mut self) {
        self.state = State::Idle;
        self.pc = 0;
        self.loop_counter = None;
    }

    /// Advances one clock cycle.
    pub fn step(&mut self, scm: &mut Scm, trigger: &mut TriggerUnit, ctx: &mut ExecCtx<'_>) {
        if self.state != State::Idle {
            self.stats.busy_cycles += 1;
        }
        match self.state {
            State::Idle => {
                if let Some(token) = trigger.pop() {
                    self.stats.triggers_serviced += 1;
                    self.pc = 0;
                    // The SCM read is issued now; the command executes
                    // next cycle — "one clock cycle after a successful
                    // triggering condition" (paper Section III-1c).
                    self.state = if self.fetch_stall > 0 {
                        State::FetchStall {
                            remaining: self.fetch_stall,
                        }
                    } else {
                        State::Execute
                    };
                    self.stats.busy_cycles += 1;
                    ctx.trace.record(ctx.time, ctx.id, "trigger", ctx.cycle);
                    // Adopt (or clear) the flow the token carried; the
                    // link's context threads every later hop of this
                    // program run.
                    ctx.trace.flow_begin(ctx.time, ctx.id, token.flow, "trigger");
                }
            }
            State::Fetch => {
                // Redirect bubble: the pipelined prefetch of the
                // sequential line is discarded and the target line read.
                self.state = State::Execute;
            }
            State::FetchStall { remaining } => {
                self.state = if remaining <= 1 {
                    State::Execute
                } else {
                    State::FetchStall {
                        remaining: remaining - 1,
                    }
                };
            }
            State::Execute => {
                let cmd = scm.fetch(self.pc);
                self.execute(cmd, ctx);
            }
            State::ReadWait { cmd } => {
                if let Some(result) = ctx.bus.take_response() {
                    match result {
                        Ok(rdata) => match cmd {
                            Command::Capture { mask, .. } => {
                                self.dpr = rdata & mask;
                                ctx.trace.record(
                                    ctx.time,
                                    ctx.id,
                                    "capture",
                                    u64::from(self.dpr),
                                );
                                ctx.trace.flow_hop(ctx.time, ctx.id, "capture");
                                self.advance();
                            }
                            _ => {
                                // RMW: modify next cycle, then write back.
                                self.state = State::WriteTurn { cmd, rdata };
                            }
                        },
                        Err(()) => self.bus_error(ctx),
                    }
                }
            }
            State::WriteTurn { cmd, rdata } => {
                let (offset, new_value) = match cmd {
                    Command::Set { offset, mask } => (offset, rdata | mask),
                    Command::Clear { offset, mask } => (offset, rdata & !mask),
                    Command::Toggle { offset, mask } => (offset, rdata ^ mask),
                    _ => unreachable!("WriteTurn only entered for RMW commands"),
                };
                if ctx.bus.issue_write(self.addr_of(offset), new_value) {
                    // Hop at issue time (not response) so the downstream
                    // pad-out hop can never share a timestamp with it.
                    ctx.trace.flow_hop(ctx.time, ctx.id, "write");
                    self.state = State::WriteWait;
                }
                // else: port busy (cannot happen with a private port, but
                // retry next cycle keeps the model robust).
            }
            State::WriteWait => {
                if let Some(result) = ctx.bus.take_response() {
                    match result {
                        Ok(_) => self.advance(),
                        Err(()) => self.bus_error(ctx),
                    }
                }
            }
            State::Waiting { remaining } => {
                if remaining <= 1 {
                    self.advance();
                } else {
                    self.state = State::Waiting {
                        remaining: remaining - 1,
                    };
                }
            }
        }
    }

    /// Moves to the next sequential command (pipelined fetch: executes
    /// next cycle).
    fn advance(&mut self) {
        self.pc += 1;
        self.state = if self.fetch_stall > 0 {
            State::FetchStall {
                remaining: self.fetch_stall,
            }
        } else {
            State::Execute
        };
    }

    /// Redirects to `target` (costs one fetch bubble).
    fn redirect(&mut self, target: usize) {
        self.pc = target;
        self.state = if self.fetch_stall > 0 {
            State::FetchStall {
                remaining: self.fetch_stall + 1,
            }
        } else {
            State::Fetch
        };
    }

    fn bus_error(&mut self, ctx: &mut ExecCtx<'_>) {
        self.stats.bus_errors += 1;
        ctx.trace.record(ctx.time, ctx.id, "bus_error", ctx.cycle);
        ctx.trace.flow_hop(ctx.time, ctx.id, "bus_error");
        self.finish_program();
    }

    fn execute(&mut self, cmd: Command, ctx: &mut ExecCtx<'_>) {
        self.stats.commands += 1;
        match cmd {
            Command::Nop => self.advance(),
            Command::Halt => {
                ctx.trace.record(ctx.time, ctx.id, "halt", ctx.cycle);
                ctx.trace.flow_hop(ctx.time, ctx.id, "halt");
                self.finish_program();
            }
            Command::Action { mode, group, mask } => {
                ctx.actions.apply(mode, group, mask);
                ctx.trace
                    .record(ctx.time, ctx.id, "action", u64::from(mask));
                ctx.trace.flow_hop(ctx.time, ctx.id, "action");
                // The driven action lines carry the flow onward (loopback
                // retriggers, wired peripheral actions).
                ctx.trace
                    .flow_stage_lines(ctx.id, u64::from(mask) << (32 * u64::from(group & 1)));
                self.advance();
            }
            Command::Wait { cycles } => {
                if cycles <= 1 {
                    self.advance();
                } else {
                    self.state = State::Waiting {
                        remaining: cycles - 1,
                    };
                }
            }
            Command::JumpIf {
                cond,
                target,
                operand,
            } => {
                if cond.eval(self.dpr, operand) {
                    self.redirect(usize::from(target));
                } else {
                    self.advance();
                }
            }
            Command::Loop { target, count } => {
                let remaining = self.loop_counter.unwrap_or(count);
                if remaining > 0 {
                    self.loop_counter = Some(remaining - 1);
                    self.redirect(usize::from(target));
                } else {
                    self.loop_counter = None;
                    self.advance();
                }
            }
            Command::Write { offset, value } => {
                if ctx.bus.issue_write(self.addr_of(offset), value) {
                    ctx.trace.flow_hop(ctx.time, ctx.id, "write");
                    self.state = State::WriteWait;
                }
            }
            Command::Capture { offset, .. } => {
                if ctx.bus.issue_read(self.addr_of(offset)) {
                    self.state = State::ReadWait { cmd };
                }
            }
            Command::Set { offset, .. }
            | Command::Clear { offset, .. }
            | Command::Toggle { offset, .. } => {
                if ctx.bus.issue_read(self.addr_of(offset)) {
                    self.state = State::ReadWait { cmd };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Cond;
    use crate::program::Program;
    use pels_sim::Fifo;

    /// A test bus with fixed response latency (2 cycles, like the real
    /// fabric) over a small register file.
    struct TestBus {
        regs: [u32; 16],
        in_flight: Option<(u32, bool, u32, u8)>, // addr, write, wdata, remaining
        response: Option<Result<u32, ()>>,
        pub reads: u32,
        pub writes: u32,
    }

    impl TestBus {
        fn new() -> Self {
            TestBus {
                regs: [0; 16],
                in_flight: None,
                response: None,
                reads: 0,
                writes: 0,
            }
        }

        /// Advances the bus one cycle (call once per exec step).
        fn tick(&mut self) {
            if let Some((addr, write, wdata, remaining)) = self.in_flight.take() {
                if remaining > 1 {
                    self.in_flight = Some((addr, write, wdata, remaining - 1));
                } else {
                    let idx = (addr / 4) as usize;
                    if idx >= self.regs.len() {
                        self.response = Some(Err(()));
                    } else if write {
                        self.regs[idx] = wdata;
                        self.writes += 1;
                        self.response = Some(Ok(0));
                    } else {
                        self.reads += 1;
                        self.response = Some(Ok(self.regs[idx]));
                    }
                }
            }
        }
    }

    impl LinkBus for TestBus {
        fn can_issue(&self) -> bool {
            self.in_flight.is_none() && self.response.is_none()
        }
        fn issue_read(&mut self, addr: u32) -> bool {
            if !self.can_issue() {
                return false;
            }
            self.in_flight = Some((addr, false, 0, 2));
            true
        }
        fn issue_write(&mut self, addr: u32, value: u32) -> bool {
            if !self.can_issue() {
                return false;
            }
            self.in_flight = Some((addr, true, value, 2));
            true
        }
        fn take_response(&mut self) -> Option<Result<u32, ()>> {
            self.response.take()
        }
    }

    struct Rig {
        exec: ExecutionUnit,
        scm: Scm,
        trigger: TriggerUnit,
        bus: TestBus,
        actions: ActionLines,
        trace: Trace,
        cycle: u64,
    }

    impl Rig {
        fn new(program: &Program) -> Self {
            let mut scm = Scm::new(8);
            scm.load(program).unwrap();
            let mut trigger = TriggerUnit::new(4);
            trigger.set_mask(EventVector::mask_of(&[0]));
            Rig {
                exec: ExecutionUnit::new(),
                scm,
                trigger,
                bus: TestBus::new(),
                actions: ActionLines::new(),
                trace: Trace::new(),
                cycle: 0,
            }
        }

        fn fire(&mut self) {
            self.trigger.sample(EventVector::mask_of(&[0]), self.cycle);
        }

        /// One cycle; returns the action lines visible this cycle.
        fn step(&mut self) -> EventVector {
            let mut ctx = ExecCtx {
                cycle: self.cycle,
                time: SimTime::from_ps(self.cycle * 1000),
                bus: &mut self.bus,
                actions: &mut self.actions,
                trace: &mut self.trace,
                id: ComponentId::intern("link0"),
            };
            self.exec.step(&mut self.scm, &mut self.trigger, &mut ctx);
            self.bus.tick();
            let visible = self.actions.current();
            self.actions.end_cycle();
            self.cycle += 1;
            visible
        }

        /// Steps until idle or `max` cycles.
        fn run(&mut self, max: u64) -> EventVector {
            let mut seen = EventVector::EMPTY;
            for _ in 0..max {
                seen |= self.step();
                if !self.exec.is_busy() && self.trigger.pending() == 0 {
                    break;
                }
            }
            seen
        }
    }

    fn prog(cmds: Vec<Command>) -> Program {
        Program::new(cmds).unwrap()
    }

    #[test]
    fn instant_action_pulse_at_cycle_two() {
        // Event at cycle 0 (sample before first step): pulse must be
        // visible during cycle 2 — the paper's 2-cycle instant action.
        let mut r = Rig::new(&prog(vec![
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1 << 8,
            },
            Command::Halt,
        ]));
        r.fire(); // event sampled before cycle 0
        // Rig step 0 is the paper's cycle C+1 (FIFO pop), so the pulse
        // must be visible during step 1 (= C+2): the 2-cycle instant
        // action.
        let v0 = r.step();
        let v1 = r.step();
        assert!(v0.is_empty());
        assert!(v1.is_set(8), "pulse visible two cycles after the event");
    }

    #[test]
    fn capture_takes_three_cycles_then_jump_one() {
        let mut r = Rig::new(&prog(vec![
            Command::Capture { offset: 4, mask: 0xFFFF },
            Command::JumpIf {
                cond: Cond::GeU,
                target: 3,
                operand: 100,
            },
            Command::Halt, // below threshold
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
        ]));
        r.bus.regs[4] = 500; // above threshold
        r.fire();
        let seen = r.run(32);
        assert!(seen.is_set(0), "threshold path taken");
        assert_eq!(r.exec.dpr(), 500);
        // Trace carries capture + action.
        assert!(r.trace.first("link0", "capture").is_some());
    }

    #[test]
    fn below_threshold_halts_without_action() {
        let mut r = Rig::new(&prog(vec![
            Command::Capture { offset: 4, mask: 0xFFFF },
            Command::JumpIf {
                cond: Cond::GeU,
                target: 3,
                operand: 100,
            },
            Command::Halt,
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
        ]));
        r.bus.regs[4] = 50;
        r.fire();
        let seen = r.run(32);
        assert!(seen.is_empty());
        assert!(!r.exec.is_busy());
    }

    #[test]
    fn rmw_set_reads_modifies_writes() {
        let mut r = Rig::new(&prog(vec![
            Command::Set { offset: 2, mask: 0xF0 },
            Command::Halt,
        ]));
        r.bus.regs[2] = 0x0F;
        r.fire();
        r.run(32);
        assert_eq!(r.bus.regs[2], 0xFF);
        assert_eq!(r.bus.reads, 1);
        assert_eq!(r.bus.writes, 1);
    }

    #[test]
    fn rmw_clear_and_toggle() {
        let mut r = Rig::new(&prog(vec![
            Command::Clear { offset: 1, mask: 0x0F },
            Command::Toggle { offset: 1, mask: 0xFF },
            Command::Halt,
        ]));
        r.bus.regs[1] = 0xFF;
        r.fire();
        r.run(64);
        // 0xFF -> clear 0x0F -> 0xF0 -> toggle 0xFF -> 0x0F
        assert_eq!(r.bus.regs[1], 0x0F);
    }

    #[test]
    fn write_command_stores_value() {
        let mut r = Rig::new(&prog(vec![
            Command::Write { offset: 3, value: 0xABCD },
            Command::Halt,
        ]));
        r.fire();
        r.run(32);
        assert_eq!(r.bus.regs[3], 0xABCD);
        assert_eq!(r.bus.reads, 0, "plain write needs no read");
    }

    #[test]
    fn wait_command_delays_execution() {
        let mut r1 = Rig::new(&prog(vec![
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
            Command::Halt,
        ]));
        let mut r2 = Rig::new(&prog(vec![
            Command::Wait { cycles: 5 },
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
            Command::Halt,
        ]));
        r1.fire();
        r2.fire();
        let mut t1 = None;
        let mut t2 = None;
        for i in 0..32 {
            if r1.step().is_set(0) && t1.is_none() {
                t1 = Some(i);
            }
            if r2.step().is_set(0) && t2.is_none() {
                t2 = Some(i);
            }
        }
        assert_eq!(t2.unwrap() - t1.unwrap(), 5, "wait 5 adds exactly 5 cycles");
    }

    #[test]
    fn loop_repeats_body_count_times() {
        // Body pulses line 0; loop jumps back twice -> 3 executions.
        let mut r = Rig::new(&prog(vec![
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
            Command::Loop { target: 0, count: 2 },
            Command::Halt,
        ]));
        r.fire();
        let mut pulses = 0;
        for _ in 0..64 {
            if r.step().is_set(0) {
                pulses += 1;
            }
            if !r.exec.is_busy() {
                break;
            }
        }
        assert_eq!(pulses, 3);
    }

    #[test]
    fn action_latch_modes() {
        let mut r = Rig::new(&prog(vec![
            Command::Action {
                mode: ActionMode::Set,
                group: 0,
                mask: 0b11,
            },
            Command::Action {
                mode: ActionMode::Clear,
                group: 0,
                mask: 0b01,
            },
            Command::Action {
                mode: ActionMode::Toggle,
                group: 1,
                mask: 0b1,
            },
            Command::Halt,
        ]));
        r.fire();
        r.run(32);
        assert_eq!(
            r.actions.latched(),
            EventVector::mask_of(&[1, 32]),
            "set 0-1, clear 0, toggle 32"
        );
    }

    #[test]
    fn bus_error_aborts_program() {
        let mut r = Rig::new(&prog(vec![
            Command::Capture { offset: 0xFF, mask: 1 }, // out of range in TestBus
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
            Command::Halt,
        ]));
        r.fire();
        let seen = r.run(32);
        assert!(seen.is_empty(), "program aborted before the action");
        assert_eq!(r.exec.stats().bus_errors, 1);
        assert!(r.trace.first("link0", "bus_error").is_some());
    }

    #[test]
    fn queued_trigger_services_after_current_program() {
        let mut r = Rig::new(&prog(vec![
            Command::Wait { cycles: 4 },
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
            Command::Halt,
        ]));
        r.fire();
        r.step();
        r.fire(); // second event while busy -> FIFO
        let mut pulses = 0;
        for _ in 0..64 {
            if r.step().is_set(0) {
                pulses += 1;
            }
            if !r.exec.is_busy() && r.trigger.pending() == 0 {
                break;
            }
        }
        assert_eq!(pulses, 2, "both events serviced");
        assert_eq!(r.exec.stats().triggers_serviced, 2);
    }

    #[test]
    fn rmw_is_observable_with_seven_cycle_latency() {
        // End-to-end accounting in the rig: event sampled before cycle 0;
        // the rig's step 0 corresponds to the paper's C+1 (FIFO pop).
        // Write commits during ReadWait→WriteTurn→WriteWait; regs updated
        // at bus.tick of the write's access cycle. The paper's "7 cycles"
        // = first cycle the written value is observable; here we assert
        // the commit cycle index.
        let mut r = Rig::new(&prog(vec![
            Command::Set { offset: 2, mask: 1 },
            Command::Halt,
        ]));
        r.fire();
        let mut commit_cycle = None;
        for i in 0..20 {
            r.step();
            if commit_cycle.is_none() && r.bus.regs[2] == 1 {
                commit_cycle = Some(i);
            }
        }
        // Steps (paper cycle in parens): 0 pop (C+1), 1 issue read (C+2),
        // 2 read commits (C+3), 3 response consumed (C+4), 4 modify +
        // issue write (C+5), 5 write commits (C+6) -> observable C+7, the
        // paper's 7-cycle sequenced action.
        assert_eq!(commit_cycle, Some(5));
    }

    #[test]
    fn stats_track_busy_and_commands() {
        let mut r = Rig::new(&prog(vec![Command::Nop, Command::Halt]));
        r.fire();
        r.run(16);
        let s = r.exec.stats();
        assert_eq!(s.commands, 2);
        assert!(s.busy_cycles >= 3);
        assert_eq!(s.triggers_serviced, 1);
    }

    #[test]
    fn trigger_fifo_integration_with_zero_depth_drops() {
        let p = prog(vec![Command::Halt]);
        let mut scm = Scm::new(4);
        scm.load(&p).unwrap();
        let mut trigger = TriggerUnit::new(0);
        trigger.set_mask(EventVector::mask_of(&[0]));
        trigger.sample(EventVector::mask_of(&[0]), 0);
        assert_eq!(trigger.drops(), 1);
        let _unused: Fifo<u8> = Fifo::new(1);
    }
}
