//! The memory-mapped configuration interface.
//!
//! "The main CPU configures both masking and triggering conditions
//! through each link's private configuration registers" (paper Section
//! III-1a). This module gives [`Pels`] an APB-style register file so the
//! Ibex-class core (or any bus master) can configure masks, conditions,
//! base addresses and load microcode through an SCM write window.

use crate::pels::Pels;
use crate::trigger::TriggerCond;
use pels_sim::EventVector;

/// Register-map constants (byte offsets).
pub mod regs {
    /// Global control: bit 0 = enable.
    pub const CTRL: u32 = 0x000;
    /// Read-only link count.
    pub const N_LINKS: u32 = 0x004;
    /// Read-only SCM lines per link.
    pub const SCM_LINES: u32 = 0x008;
    /// Stride between link register blocks.
    pub const LINK_STRIDE: u32 = 0x100;
    /// First link block offset.
    pub const LINK0: u32 = 0x100;
    /// Link: control (bit0 enable; bits\[2:1\] condition: 0 any, 1 all,
    /// 2 at-least-k; bits\[15:8\] k).
    pub const LINK_CTRL: u32 = 0x00;
    /// Link: event-mask low word.
    pub const LINK_MASK_LO: u32 = 0x04;
    /// Link: event-mask high word.
    pub const LINK_MASK_HI: u32 = 0x08;
    /// Link: sequenced-action base address.
    pub const LINK_BASE: u32 = 0x0C;
    /// Link: status (RO — bit0 busy, bits\[7:4\] FIFO level, bits\[15:8\]
    /// PC).
    pub const LINK_STATUS: u32 = 0x10;
    /// Link: datapath register (RO).
    pub const LINK_DPR: u32 = 0x14;
    /// Link: trigger-FIFO drop count (RO).
    pub const LINK_DROPS: u32 = 0x18;
    /// Link: SCM window start — line *i* low word at `SCM_WINDOW + 8*i`,
    /// high word at `SCM_WINDOW + 8*i + 4`.
    pub const SCM_WINDOW: u32 = 0x40;
}

/// A configuration-access failure (unmapped offset or read-only write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending byte offset.
    pub offset: u32,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unmapped pels config offset {:#x}", self.offset)
    }
}

impl std::error::Error for ConfigError {}

fn decode_cond(ctrl: u32) -> TriggerCond {
    match (ctrl >> 1) & 0b11 {
        0 => TriggerCond::Any,
        1 => TriggerCond::All,
        _ => TriggerCond::AtLeast(((ctrl >> 8) & 0xFF) as u8),
    }
}

fn encode_cond(cond: TriggerCond) -> u32 {
    match cond {
        TriggerCond::Any => 0,
        TriggerCond::All => 1 << 1,
        TriggerCond::AtLeast(k) => (2 << 1) | (u32::from(k) << 8),
    }
}

impl Pels {
    /// Reads a configuration register.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for unmapped offsets.
    pub fn config_read(&self, offset: u32) -> Result<u32, ConfigError> {
        match offset {
            regs::CTRL => return Ok(u32::from(self.is_enabled())),
            regs::N_LINKS => return Ok(self.link_count() as u32),
            regs::SCM_LINES => return Ok(self.config().scm_lines as u32),
            _ => {}
        }
        let (link_idx, link_off) = self.decode_link(offset)?;
        let link = self.link(link_idx);
        match link_off {
            regs::LINK_CTRL => Ok(u32::from(link.trigger().is_enabled())
                | encode_cond(link.trigger().condition())),
            regs::LINK_MASK_LO => Ok(link.trigger().mask().bits() as u32),
            regs::LINK_MASK_HI => Ok((link.trigger().mask().bits() >> 32) as u32),
            regs::LINK_BASE => Ok(link.exec().base()),
            regs::LINK_STATUS => Ok(u32::from(link.is_busy())
                | ((link.trigger().pending() as u32) << 4)
                | ((link.exec().pc() as u32) << 8)),
            regs::LINK_DPR => Ok(link.exec().dpr()),
            regs::LINK_DROPS => Ok(link.trigger().drops() as u32),
            o if o >= regs::SCM_WINDOW => {
                let idx = ((o - regs::SCM_WINDOW) / 8) as usize;
                if idx >= link.scm().capacity() {
                    return Err(ConfigError { offset });
                }
                let raw = link.scm().peek_line(idx);
                if (o - regs::SCM_WINDOW).is_multiple_of(8) {
                    Ok(raw as u32)
                } else {
                    Ok((raw >> 32) as u32)
                }
            }
            _ => Err(ConfigError { offset }),
        }
    }

    /// Writes a configuration register.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for unmapped or read-only offsets.
    pub fn config_write(&mut self, offset: u32, value: u32) -> Result<(), ConfigError> {
        match offset {
            regs::CTRL => {
                self.set_enabled(value & 1 != 0);
                return Ok(());
            }
            regs::N_LINKS | regs::SCM_LINES => return Err(ConfigError { offset }),
            _ => {}
        }
        let (link_idx, link_off) = self.decode_link(offset)?;
        let link = self.link_mut(link_idx);
        match link_off {
            regs::LINK_CTRL => {
                link.set_enabled(value & 1 != 0);
                link.set_condition(decode_cond(value));
                Ok(())
            }
            regs::LINK_MASK_LO => {
                let hi = link.trigger().mask().bits() & 0xFFFF_FFFF_0000_0000;
                link.set_mask(EventVector::from_bits(hi | u64::from(value)));
                Ok(())
            }
            regs::LINK_MASK_HI => {
                let lo = link.trigger().mask().bits() & 0xFFFF_FFFF;
                link.set_mask(EventVector::from_bits((u64::from(value) << 32) | lo));
                Ok(())
            }
            regs::LINK_BASE => {
                link.set_base(value);
                Ok(())
            }
            regs::LINK_STATUS | regs::LINK_DPR | regs::LINK_DROPS => {
                Err(ConfigError { offset })
            }
            o if o >= regs::SCM_WINDOW => {
                let rel = o - regs::SCM_WINDOW;
                let idx = (rel / 8) as usize;
                if idx >= link.scm().capacity() {
                    return Err(ConfigError { offset });
                }
                let old = link.scm().peek_line(idx);
                let new = if rel.is_multiple_of(8) {
                    (old & 0xFFFF_0000_0000_0000) | (old & 0xFFFF_0000_0000) | u64::from(value)
                } else {
                    (old & 0xFFFF_FFFF) | (u64::from(value & 0xFFFF) << 32)
                };
                link.scm_mut().write_line(idx, new);
                Ok(())
            }
            _ => Err(ConfigError { offset }),
        }
    }

    fn decode_link(&self, offset: u32) -> Result<(usize, u32), ConfigError> {
        if offset < regs::LINK0 {
            return Err(ConfigError { offset });
        }
        let idx = ((offset - regs::LINK0) / regs::LINK_STRIDE) as usize;
        if idx >= self.link_count() {
            return Err(ConfigError { offset });
        }
        Ok((idx, (offset - regs::LINK0) % regs::LINK_STRIDE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Command;
    use crate::encoding::encode_command;
    use crate::pels::PelsBuilder;

    fn link_reg(link: u32, off: u32) -> u32 {
        regs::LINK0 + link * regs::LINK_STRIDE + off
    }

    #[test]
    fn global_registers() {
        let mut p = PelsBuilder::new().links(3).scm_lines(6).build();
        assert_eq!(p.config_read(regs::N_LINKS).unwrap(), 3);
        assert_eq!(p.config_read(regs::SCM_LINES).unwrap(), 6);
        assert_eq!(p.config_read(regs::CTRL).unwrap(), 1);
        p.config_write(regs::CTRL, 0).unwrap();
        assert!(!p.is_enabled());
        assert!(p.config_write(regs::N_LINKS, 9).is_err());
    }

    #[test]
    fn link_mask_read_write_64bit() {
        let mut p = PelsBuilder::new().links(2).build();
        p.config_write(link_reg(1, regs::LINK_MASK_LO), 0x0000_0008)
            .unwrap();
        p.config_write(link_reg(1, regs::LINK_MASK_HI), 0x0000_0100)
            .unwrap();
        let mask = p.link(1).trigger().mask();
        assert_eq!(mask, EventVector::mask_of(&[3, 40]));
        assert_eq!(p.config_read(link_reg(1, regs::LINK_MASK_LO)).unwrap(), 8);
        assert_eq!(
            p.config_read(link_reg(1, regs::LINK_MASK_HI)).unwrap(),
            0x100
        );
    }

    #[test]
    fn link_ctrl_encodes_condition() {
        let mut p = PelsBuilder::new().build();
        p.config_write(link_reg(0, regs::LINK_CTRL), 1 | (1 << 1))
            .unwrap();
        assert_eq!(p.link(0).trigger().condition(), TriggerCond::All);
        p.config_write(link_reg(0, regs::LINK_CTRL), 1 | (2 << 1) | (3 << 8))
            .unwrap();
        assert_eq!(
            p.link(0).trigger().condition(),
            TriggerCond::AtLeast(3)
        );
        let ctrl = p.config_read(link_reg(0, regs::LINK_CTRL)).unwrap();
        assert_eq!(decode_cond(ctrl), TriggerCond::AtLeast(3));
    }

    #[test]
    fn scm_window_loads_commands() {
        let mut p = PelsBuilder::new().scm_lines(4).build();
        let raw = encode_command(&Command::Wait { cycles: 99 }).unwrap();
        let base = link_reg(0, regs::SCM_WINDOW);
        p.config_write(base, raw as u32).unwrap();
        p.config_write(base + 4, (raw >> 32) as u32).unwrap();
        assert_eq!(p.link(0).scm().peek_line(0), raw);
        assert_eq!(p.config_read(base).unwrap(), raw as u32);
        assert_eq!(p.config_read(base + 4).unwrap(), (raw >> 32) as u32);
    }

    #[test]
    fn scm_window_bounds_checked() {
        let mut p = PelsBuilder::new().scm_lines(4).build();
        let beyond = link_reg(0, regs::SCM_WINDOW + 8 * 4);
        assert!(p.config_read(beyond).is_err());
        assert!(p.config_write(beyond, 0).is_err());
    }

    #[test]
    fn read_only_link_regs_reject_writes() {
        let mut p = PelsBuilder::new().build();
        assert!(p
            .config_write(link_reg(0, regs::LINK_STATUS), 0)
            .is_err());
        assert!(p.config_write(link_reg(0, regs::LINK_DPR), 0).is_err());
    }

    #[test]
    fn out_of_range_link_rejected() {
        let p = PelsBuilder::new().links(1).build();
        assert!(p.config_read(link_reg(1, regs::LINK_CTRL)).is_err());
        let e = p.config_read(0x0C).unwrap_err();
        assert!(e.to_string().contains("unmapped"));
    }

    #[test]
    fn base_register_roundtrip() {
        let mut p = PelsBuilder::new().build();
        p.config_write(link_reg(0, regs::LINK_BASE), 0x1A10_2000)
            .unwrap();
        assert_eq!(
            p.config_read(link_reg(0, regs::LINK_BASE)).unwrap(),
            0x1A10_2000
        );
    }
}
