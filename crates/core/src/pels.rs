//! The PELS top level: N links, event broadcast, action lines, loopback.

use crate::exec::{ActionLines, LinkBus};
use crate::link::{Link, DEFAULT_FIFO_DEPTH};
use pels_sim::{ActivitySet, EventVector, SimTime, Trace};

/// Static configuration of a PELS instance — the two knobs the paper
/// sweeps in Figure 6a (links × SCM lines) plus the FIFO-depth and
/// loopback wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PelsConfig {
    /// Number of independent links (paper sweeps 1–8).
    pub links: usize,
    /// SCM lines (commands) per link (paper sweeps 4, 6, 8).
    pub scm_lines: usize,
    /// Trigger-FIFO depth per link.
    pub fifo_depth: usize,
    /// Outgoing action lines fed back into the incoming events
    /// (inter-link triggering, paper Figure 2 ⑨).
    pub loopback: EventVector,
}

impl Default for PelsConfig {
    /// The paper's minimal configuration: 1 link, 4 SCM lines.
    fn default() -> Self {
        PelsConfig {
            links: 1,
            scm_lines: 4,
            fifo_depth: DEFAULT_FIFO_DEPTH,
            loopback: EventVector::EMPTY,
        }
    }
}

/// Builder for [`Pels`].
///
/// ```
/// use pels_core::PelsBuilder;
/// use pels_sim::EventVector;
/// let pels = PelsBuilder::new()
///     .links(4)
///     .scm_lines(6)
///     .loopback(EventVector::mask_of(&[40]))
///     .build();
/// assert_eq!(pels.link_count(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PelsBuilder {
    config: PelsConfig,
}

impl PelsBuilder {
    /// Starts from the paper's minimal configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of links.
    pub fn links(mut self, links: usize) -> Self {
        self.config.links = links;
        self
    }

    /// Sets the SCM lines per link.
    pub fn scm_lines(mut self, lines: usize) -> Self {
        self.config.scm_lines = lines;
        self
    }

    /// Sets the per-link trigger-FIFO depth.
    pub fn fifo_depth(mut self, depth: usize) -> Self {
        self.config.fifo_depth = depth;
        self
    }

    /// Selects which action lines loop back into the event inputs.
    pub fn loopback(mut self, mask: EventVector) -> Self {
        self.config.loopback = mask;
        self
    }

    /// Builds the instance.
    ///
    /// # Panics
    ///
    /// Panics if `links` is 0 or greater than 64, or `scm_lines` is out
    /// of the SCM's 1..=512 range.
    pub fn build(self) -> Pels {
        Pels::new(self.config)
    }
}

/// The bus-master side PELS needs from its integration: one port per
/// link. The SoC implements this over its fabric's master ports.
pub trait PelsBus {
    /// Whether link `link` can issue this cycle.
    fn can_issue(&self, link: usize) -> bool;
    /// Issues a read for link `link`.
    fn issue_read(&mut self, link: usize, addr: u32) -> bool;
    /// Issues a write for link `link`.
    fn issue_write(&mut self, link: usize, addr: u32, value: u32) -> bool;
    /// Takes link `link`'s completed response.
    fn take_response(&mut self, link: usize) -> Option<Result<u32, ()>>;
}

/// A no-bus implementation for instant-action-only deployments and unit
/// tests: every sequenced transaction errors.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBus;

impl PelsBus for NoBus {
    fn can_issue(&self, _link: usize) -> bool {
        true
    }
    fn issue_read(&mut self, _link: usize, _addr: u32) -> bool {
        true
    }
    fn issue_write(&mut self, _link: usize, _addr: u32, _value: u32) -> bool {
        true
    }
    fn take_response(&mut self, _link: usize) -> Option<Result<u32, ()>> {
        Some(Err(()))
    }
}

struct LinkPort<'a> {
    bus: &'a mut dyn PelsBus,
    link: usize,
}

impl LinkBus for LinkPort<'_> {
    fn can_issue(&self) -> bool {
        self.bus.can_issue(self.link)
    }
    fn issue_read(&mut self, addr: u32) -> bool {
        self.bus.issue_read(self.link, addr)
    }
    fn issue_write(&mut self, addr: u32, value: u32) -> bool {
        self.bus.issue_write(self.link, addr, value)
    }
    fn take_response(&mut self) -> Option<Result<u32, ()>> {
        self.bus.take_response(self.link)
    }
}

/// The Peripheral Event Linking System.
///
/// Tick once per clock cycle with the sampled external events; the return
/// value is the outgoing action-line image for the cycle (instant-action
/// pulses plus latched levels). Within a tick the execution units run
/// *before* the trigger units sample, so a trigger fires the cycle after
/// its event — the first command executes one further cycle later, giving
/// the paper's 2-cycle instant action.
pub struct Pels {
    config: PelsConfig,
    links: Vec<Link>,
    actions: ActionLines,
    prev_actions: EventVector,
    enabled: bool,
    cycle: u64,
}

impl std::fmt::Debug for Pels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pels")
            .field("links", &self.links.len())
            .field("scm_lines", &self.config.scm_lines)
            .field("enabled", &self.enabled)
            .field("cycle", &self.cycle)
            .finish()
    }
}

impl Pels {
    /// Creates a PELS instance from a config.
    ///
    /// # Panics
    ///
    /// Panics if `links` is 0 or greater than 64.
    pub fn new(config: PelsConfig) -> Self {
        assert!(
            (1..=64).contains(&config.links),
            "pels needs 1..=64 links, got {}",
            config.links
        );
        let links = (0..config.links)
            .map(|i| Link::with_fifo_depth(i, config.scm_lines, config.fifo_depth))
            .collect();
        Pels {
            config,
            links,
            actions: ActionLines::new(),
            prev_actions: EventVector::EMPTY,
            enabled: true,
            cycle: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> PelsConfig {
        self.config
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Access to link `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link(&self, i: usize) -> &Link {
        &self.links[i]
    }

    /// Mutable access to link `i` (programming/configuration).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link_mut(&mut self, i: usize) -> &mut Link {
        &mut self.links[i]
    }

    /// Globally enables/disables event processing.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether globally enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether any link is busy.
    pub fn is_busy(&self) -> bool {
        self.links.iter().any(Link::is_busy)
    }

    /// The action lines as of the *previous* cycle (what peripherals see
    /// through their registered inputs).
    pub fn action_lines(&self) -> EventVector {
        self.prev_actions
    }

    /// Elapsed ticks.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances one clock cycle.
    ///
    /// * `external_events` — event pulses from the peripherals this
    ///   cycle;
    /// * `bus` — the per-link master ports;
    /// * returns the outgoing action-line image for this cycle.
    pub fn tick(
        &mut self,
        external_events: EventVector,
        time: SimTime,
        bus: &mut dyn PelsBus,
        trace: &mut Trace,
    ) -> EventVector {
        let cycle = self.cycle;
        self.cycle += 1;
        if !self.enabled {
            self.prev_actions = EventVector::EMPTY;
            return EventVector::EMPTY;
        }

        // Quiescent fast path: no events arriving and every link idle
        // with an empty FIFO. Execution units would not change state and
        // no trigger can fire, so the output image is just the latched
        // action levels, unchanged.
        if (external_events | (self.prev_actions & self.config.loopback)).is_empty()
            && self.links.iter().all(Link::is_quiescent)
        {
            let visible = self.actions.current();
            self.prev_actions = visible;
            self.actions.end_cycle();
            return visible;
        }

        // 1. Execution units run on previously buffered triggers.
        for (i, link) in self.links.iter_mut().enumerate() {
            let mut port = LinkPort { bus, link: i };
            link.step_exec(cycle, time, &mut port, &mut self.actions, trace);
        }

        // 2. Trigger units sample this cycle's events (external pulses +
        //    looped-back action lines from the previous cycle).
        let events =
            external_events | (self.prev_actions & self.config.loopback);
        for link in &mut self.links {
            link.sample_events_traced(events, cycle, trace);
        }

        // 3. Latch the output image.
        let visible = self.actions.current();
        self.prev_actions = visible;
        self.actions.end_cycle();
        visible
    }

    /// Drains the per-link activity counters.
    pub fn drain_activity(&mut self, into: &mut ActivitySet) {
        for link in &mut self.links {
            link.drain_activity(into);
        }
    }

    /// If every tick with `external` events would be a pure no-op —
    /// nothing executing or buffered, no pulse raised, no trigger able to
    /// fire, and the output image already latched — returns that stable
    /// output image. Used by the SoC's quiescence scheduler to skip whole
    /// idle spans; [`Pels::skip_cycles`] accounts the span afterwards.
    pub fn steady_output(&self, external: EventVector) -> Option<EventVector> {
        if !self.enabled {
            return if self.prev_actions.is_empty() {
                Some(EventVector::EMPTY)
            } else {
                None
            };
        }
        let visible = self.actions.current();
        let steady = self.actions.pulses_clear()
            && visible == self.prev_actions
            && (external | (visible & self.config.loopback)).is_empty()
            && self.links.iter().all(Link::is_quiescent);
        steady.then_some(visible)
    }

    /// Advances the cycle counter by `k` without ticking — the
    /// whole-span equivalent of `k` quiescent ticks. Callers must have
    /// checked [`Pels::steady_output`].
    pub fn skip_cycles(&mut self, k: u64) {
        debug_assert!(self.steady_output(EventVector::EMPTY).is_some());
        self.cycle += k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ActionMode, Command};
    use crate::program::Program;
    use crate::trigger::TriggerCond;

    fn pulse_program(line: u32) -> Program {
        Program::new(vec![
            Command::Action {
                mode: ActionMode::Pulse,
                group: (line / 32) as u8,
                mask: 1 << (line % 32),
            },
            Command::Halt,
        ])
        .unwrap()
    }

    fn tick_n(
        pels: &mut Pels,
        events: &[EventVector],
    ) -> Vec<EventVector> {
        let mut trace = Trace::new();
        let mut bus = NoBus;
        events
            .iter()
            .enumerate()
            .map(|(i, &ev)| {
                pels.tick(ev, SimTime::from_ps(i as u64 * 1000), &mut bus, &mut trace)
            })
            .collect()
    }

    #[test]
    fn instant_action_two_cycle_latency() {
        let mut pels = PelsBuilder::new().links(1).scm_lines(4).build();
        pels.link_mut(0)
            .set_mask(EventVector::mask_of(&[3]));
        pels.link_mut(0).load_program(&pulse_program(8)).unwrap();
        let outs = tick_n(
            &mut pels,
            &[
                EventVector::mask_of(&[3]), // event at cycle 0
                EventVector::EMPTY,
                EventVector::EMPTY,
                EventVector::EMPTY,
            ],
        );
        assert!(outs[0].is_empty());
        assert!(outs[1].is_empty());
        assert!(outs[2].is_set(8), "pulse exactly 2 cycles after the event");
        assert!(outs[3].is_empty(), "pulse lasts one cycle");
    }

    #[test]
    fn links_operate_in_parallel() {
        let mut pels = PelsBuilder::new().links(2).scm_lines(4).build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&pulse_program(10)).unwrap();
        pels.link_mut(1).set_mask(EventVector::mask_of(&[1]));
        pels.link_mut(1).load_program(&pulse_program(11)).unwrap();
        let outs = tick_n(
            &mut pels,
            &[
                EventVector::mask_of(&[0, 1]),
                EventVector::EMPTY,
                EventVector::EMPTY,
            ],
        );
        assert!(outs[2].is_set(10) && outs[2].is_set(11));
    }

    #[test]
    fn loopback_triggers_second_link() {
        // Link 0 pulses line 40; line 40 loops back and triggers link 1,
        // which pulses line 41 — inter-link triggering (Figure 2 ⑨).
        let mut pels = PelsBuilder::new()
            .links(2)
            .scm_lines(4)
            .loopback(EventVector::mask_of(&[40]))
            .build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&pulse_program(40)).unwrap();
        pels.link_mut(1).set_mask(EventVector::mask_of(&[40]));
        pels.link_mut(1).load_program(&pulse_program(41)).unwrap();
        let mut events = vec![EventVector::mask_of(&[0])];
        events.extend([EventVector::EMPTY; 7]);
        let outs = tick_n(&mut pels, &events);
        assert!(outs[2].is_set(40), "link0 fires at cycle 2");
        // Link 1 sees line 40 at cycle 3 (registered loopback), fires at
        // cycle 5: another 2-cycle instant action.
        assert!(outs[5].is_set(41), "link1 chained via loopback");
    }

    #[test]
    fn disabled_pels_produces_nothing() {
        let mut pels = PelsBuilder::new().build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&pulse_program(5)).unwrap();
        pels.set_enabled(false);
        let outs = tick_n(
            &mut pels,
            &[EventVector::mask_of(&[0]), EventVector::EMPTY, EventVector::EMPTY],
        );
        assert!(outs.iter().all(|o| o.is_empty()));
    }

    #[test]
    fn trigger_condition_all_gates_firing() {
        let mut pels = PelsBuilder::new().build();
        pels.link_mut(0)
            .set_mask(EventVector::mask_of(&[0, 1]))
            .set_condition(TriggerCond::All);
        pels.link_mut(0).load_program(&pulse_program(5)).unwrap();
        let outs = tick_n(
            &mut pels,
            &[
                EventVector::mask_of(&[0]), // only one line: no trigger
                EventVector::EMPTY,
                EventVector::EMPTY,
                EventVector::mask_of(&[0, 1]), // both: trigger
                EventVector::EMPTY,
                EventVector::EMPTY,
            ],
        );
        assert!(outs[..5].iter().all(|o| !o.is_set(5)));
        assert!(outs[5].is_set(5));
    }

    #[test]
    fn builder_validates_links() {
        let result = std::panic::catch_unwind(|| PelsBuilder::new().links(0).build());
        assert!(result.is_err());
    }

    #[test]
    fn activity_drains_per_link() {
        let mut pels = PelsBuilder::new().links(2).build();
        pels.link_mut(0).set_mask(EventVector::mask_of(&[0]));
        pels.link_mut(0).load_program(&pulse_program(5)).unwrap();
        let mut events = vec![EventVector::mask_of(&[0])];
        events.extend([EventVector::EMPTY; 5]);
        tick_n(&mut pels, &events);
        let mut a = ActivitySet::new();
        pels.drain_activity(&mut a);
        assert!(a.count("pels.link0", pels_sim::ActivityKind::InstrRetired) >= 2);
        assert_eq!(a.count("pels.link1", pels_sim::ActivityKind::InstrRetired), 0);
    }
}
