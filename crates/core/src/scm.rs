//! The per-link standard-cell-memory instruction store.
//!
//! The paper's key micro-architectural choice (Section III-1b): microcode
//! is fetched from a tiny **SCM** private to each link, not from shared
//! SRAM over the bus. Fetch latency is one cycle and deterministic (no bus
//! contention) and the access energy is an order of magnitude below an
//! SRAM macro's — for small footprints SCMs also beat SRAMs on area
//! because sense amplifiers dominate tiny macros (paper ref \[20\]).

use crate::command::Command;
use crate::encoding::{decode_command, encode_command};
use crate::program::Program;
use std::fmt;

/// A small instruction memory of 48-bit lines with access accounting.
///
/// ```
/// use pels_core::{Command, Program, Scm};
/// let mut scm = Scm::new(4);
/// let p = Program::new(vec![Command::Halt])?;
/// scm.load(&p)?;
/// assert_eq!(scm.fetch(0), Command::Halt);
/// assert_eq!(scm.reads(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scm {
    lines: Vec<u64>,
    reads: u64,
    writes: u64,
}

/// A program that does not fit the SCM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScmCapacityError {
    /// Lines the program needs.
    pub needed: usize,
    /// Lines the SCM has.
    pub capacity: usize,
}

impl fmt::Display for ScmCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program of {} commands exceeds the {}-line scm",
            self.needed, self.capacity
        )
    }
}

impl std::error::Error for ScmCapacityError {}

impl Scm {
    /// Creates an SCM of `lines` 48-bit lines, initialized to `halt`.
    ///
    /// The paper sweeps 4, 6 and 8 lines per link (Figure 6a).
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or exceeds 512 (the 9-bit jump-target
    /// space).
    pub fn new(lines: usize) -> Self {
        assert!(
            (1..=512).contains(&lines),
            "scm must have 1..=512 lines, got {lines}"
        );
        let halt = encode_command(&Command::Halt).expect("halt always encodes");
        Scm {
            lines: vec![halt; lines],
            reads: 0,
            writes: 0,
        }
    }

    /// Number of lines.
    pub fn capacity(&self) -> usize {
        self.lines.len()
    }

    /// Memory footprint in bits (48 per line) — the area model's input.
    pub fn bits(&self) -> usize {
        self.lines.len() * 48
    }

    /// Loads a program starting at line 0; remaining lines are reset to
    /// `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`ScmCapacityError`] when the program is longer than the
    /// SCM.
    pub fn load(&mut self, program: &Program) -> Result<(), ScmCapacityError> {
        if program.len() > self.capacity() {
            return Err(ScmCapacityError {
                needed: program.len(),
                capacity: self.capacity(),
            });
        }
        let halt = encode_command(&Command::Halt).expect("halt always encodes");
        for (i, raw) in program.encode().into_iter().enumerate() {
            self.lines[i] = raw;
            self.writes += 1;
        }
        for line in self.lines.iter_mut().skip(program.len()) {
            *line = halt;
        }
        Ok(())
    }

    /// Writes one raw line (the CPU's memory-mapped SCM-window path).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn write_line(&mut self, line: usize, raw: u64) {
        self.lines[line] = raw;
        self.writes += 1;
    }

    /// Raw content of a line, without counting an access.
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn peek_line(&self, line: usize) -> u64 {
        self.lines[line]
    }

    /// Fetches and decodes the command at `line`, counting one SCM read.
    /// Out-of-range or undecodable lines fetch as `halt` (the hardware's
    /// safe default).
    pub fn fetch(&mut self, line: usize) -> Command {
        self.reads += 1;
        self.lines
            .get(line)
            .and_then(|&raw| decode_command(raw).ok())
            .unwrap_or(Command::Halt)
    }

    /// SCM reads so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// SCM writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Takes and clears the access counters.
    pub fn take_access_counts(&mut self) -> (u64, u64) {
        let out = (self.reads, self.writes);
        self.reads = 0;
        self.writes = 0;
        out
    }
}

/// Validates that `program` fits an SCM of `lines` lines without building
/// one — used by configuration-time checks.
///
/// # Errors
///
/// Returns [`ScmCapacityError`] when the program needs more lines.
pub fn fits(program: &Program, lines: usize) -> Result<(), ScmCapacityError> {
    if program.len() > lines {
        Err(ScmCapacityError {
            needed: program.len(),
            capacity: lines,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Cond;

    #[test]
    fn fresh_scm_fetches_halt_everywhere() {
        let mut scm = Scm::new(4);
        for i in 0..4 {
            assert_eq!(scm.fetch(i), Command::Halt);
        }
        assert_eq!(scm.fetch(99), Command::Halt, "out of range is halt");
    }

    #[test]
    fn load_and_fetch_roundtrip() {
        let mut scm = Scm::new(6);
        let p = Program::new(vec![
            Command::Capture { offset: 6, mask: 0xFFF },
            Command::JumpIf {
                cond: Cond::GeU,
                target: 0,
                operand: 100,
            },
            Command::Halt,
        ])
        .unwrap();
        scm.load(&p).unwrap();
        assert_eq!(scm.fetch(0), p.commands()[0]);
        assert_eq!(scm.fetch(1), p.commands()[1]);
        assert_eq!(scm.fetch(2), Command::Halt);
        assert_eq!(scm.fetch(5), Command::Halt, "tail reset to halt");
    }

    #[test]
    fn reload_clears_previous_program() {
        let mut scm = Scm::new(4);
        let long = Program::new(vec![Command::Nop, Command::Nop, Command::Nop, Command::Halt])
            .unwrap();
        scm.load(&long).unwrap();
        let short = Program::new(vec![Command::Halt]).unwrap();
        scm.load(&short).unwrap();
        assert_eq!(scm.fetch(1), Command::Halt);
        assert_eq!(scm.fetch(2), Command::Halt);
    }

    #[test]
    fn oversized_program_rejected() {
        let mut scm = Scm::new(2);
        let p = Program::new(vec![Command::Nop, Command::Nop, Command::Halt]).unwrap();
        let e = scm.load(&p).unwrap_err();
        assert_eq!(e, ScmCapacityError { needed: 3, capacity: 2 });
        assert!(e.to_string().contains("exceeds"));
        assert!(fits(&p, 3).is_ok());
        assert!(fits(&p, 2).is_err());
    }

    #[test]
    fn access_counters() {
        let mut scm = Scm::new(4);
        let p = Program::new(vec![Command::Nop, Command::Halt]).unwrap();
        scm.load(&p).unwrap();
        let _ = scm.fetch(0);
        let _ = scm.fetch(1);
        assert_eq!(scm.take_access_counts(), (2, 2));
        assert_eq!(scm.take_access_counts(), (0, 0));
    }

    #[test]
    fn bits_reflect_paper_configurations() {
        assert_eq!(Scm::new(4).bits(), 192);
        assert_eq!(Scm::new(8).bits(), 384);
    }

    #[test]
    fn undecodable_line_fetches_as_halt() {
        let mut scm = Scm::new(2);
        scm.write_line(0, 0xA << 44); // unassigned opcode
        assert_eq!(scm.fetch(0), Command::Halt);
    }

    #[test]
    #[should_panic(expected = "1..=512")]
    fn zero_lines_rejected() {
        let _ = Scm::new(0);
    }
}
