//! Validated microcode programs.

use crate::command::Command;
use crate::encoding::{encode_command, EncodingError};
use std::error::Error;
use std::fmt;

/// A validated sequence of [`Command`]s ready to load into a link's SCM.
///
/// Validation checks that every command encodes into the 48-bit format and
/// that every jump/loop target lands inside the program — the invariants a
/// hardware loader would enforce.
///
/// ```
/// use pels_core::{Command, Program};
/// let p = Program::new(vec![
///     Command::Wait { cycles: 10 },
///     Command::Halt,
/// ])?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), pels_core::ProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    commands: Vec<Command>,
}

/// Program validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// A program must contain at least one command.
    Empty,
    /// A jump/loop target points outside the program.
    TargetOutOfRange {
        /// Index of the offending command.
        at: usize,
        /// The out-of-range target.
        target: u16,
        /// Program length.
        len: usize,
    },
    /// A command does not encode (field out of range).
    Encoding {
        /// Index of the offending command.
        at: usize,
        /// The underlying encoding error.
        source: EncodingError,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => f.write_str("program is empty"),
            ProgramError::TargetOutOfRange { at, target, len } => write!(
                f,
                "command {at} targets line {target} outside the {len}-line program"
            ),
            ProgramError::Encoding { at, source } => {
                write!(f, "command {at} does not encode: {source}")
            }
        }
    }
}

impl Error for ProgramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProgramError::Encoding { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl Program {
    /// Validates and wraps a command sequence.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn new(commands: Vec<Command>) -> Result<Self, ProgramError> {
        if commands.is_empty() {
            return Err(ProgramError::Empty);
        }
        for (at, cmd) in commands.iter().enumerate() {
            if let Err(source) = encode_command(cmd) {
                return Err(ProgramError::Encoding { at, source });
            }
            let target = match *cmd {
                Command::JumpIf { target, .. } | Command::Loop { target, .. } => Some(target),
                _ => None,
            };
            if let Some(target) = target {
                if usize::from(target) >= commands.len() {
                    return Err(ProgramError::TargetOutOfRange {
                        at,
                        target,
                        len: commands.len(),
                    });
                }
            }
        }
        Ok(Program { commands })
    }

    /// The commands in order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of commands (SCM lines needed).
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the program is empty (never true for a constructed
    /// `Program`; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Encoded 48-bit words, one per line.
    pub fn encode(&self) -> Vec<u64> {
        self.commands
            .iter()
            .map(|c| encode_command(c).expect("validated at construction"))
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.commands.iter().enumerate() {
            writeln!(f, "{i:>3}: {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ActionMode, Cond};

    #[test]
    fn valid_program_constructs() {
        let p = Program::new(vec![
            Command::Capture { offset: 1, mask: 0xFF },
            Command::JumpIf {
                cond: Cond::GeU,
                target: 0,
                operand: 10,
            },
            Command::Halt,
        ])
        .unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.encode().len(), 3);
        assert!(p.to_string().contains("capture"));
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::new(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn dangling_jump_rejected() {
        let e = Program::new(vec![
            Command::JumpIf {
                cond: Cond::Eq,
                target: 5,
                operand: 0,
            },
            Command::Halt,
        ])
        .unwrap_err();
        assert!(matches!(
            e,
            ProgramError::TargetOutOfRange { at: 0, target: 5, len: 2 }
        ));
    }

    #[test]
    fn dangling_loop_rejected() {
        let e = Program::new(vec![Command::Loop { target: 1, count: 2 }]).unwrap_err();
        assert!(matches!(e, ProgramError::TargetOutOfRange { .. }));
    }

    #[test]
    fn unencodable_command_rejected() {
        let e = Program::new(vec![Command::Action {
            mode: ActionMode::Pulse,
            group: 9,
            mask: 0,
        }])
        .unwrap_err();
        assert!(matches!(e, ProgramError::Encoding { at: 0, .. }));
        assert!(e.to_string().contains("does not encode"));
    }
}
