//! The per-link trigger unit (paper Figure 2, blocks ①–③).
//!
//! Incoming events are broadcast to every link; each link's trigger unit
//! masks them (①) and checks a trigger condition (②) — all-selected-active
//! (AND), any-selected-active (OR), or an at-least-*k* generalization
//! (covering the paper's "a trigger condition can be a threshold to
//! generate an event"). Satisfied triggers are buffered in a FIFO so a
//! running execution unit does not lose events.

use pels_sim::{EventVector, Fifo};
use std::fmt;

/// The trigger condition over the masked event lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TriggerCond {
    /// Any selected line active (OR) — the default.
    #[default]
    Any,
    /// All selected lines active (AND).
    All,
    /// At least `k` selected lines active.
    AtLeast(u8),
}

impl fmt::Display for TriggerCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerCond::Any => f.write_str("any"),
            TriggerCond::All => f.write_str("all"),
            TriggerCond::AtLeast(k) => write!(f, "at-least-{k}"),
        }
    }
}

/// One pending trigger token: the masked event image that satisfied the
/// condition (execution units may inspect it in future extensions; the
/// measurement harness uses it for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriggerToken {
    /// The masked events at trigger time.
    pub events: EventVector,
    /// Cycle the trigger fired.
    pub cycle: u64,
    /// Causal flow carried by the event wire that fired the trigger
    /// (`0` = none / flow tracing off). Riding the FIFO means drops and
    /// occupancy automatically apply to flows too.
    pub flow: u64,
}

/// Mask + condition + FIFO.
///
/// ```
/// use pels_core::{TriggerCond, TriggerUnit};
/// use pels_sim::EventVector;
/// let mut t = TriggerUnit::new(4);
/// t.set_mask(EventVector::mask_of(&[3, 5]));
/// t.set_condition(TriggerCond::All);
/// t.sample(EventVector::mask_of(&[3]), 0);
/// assert!(t.pop().is_none()); // AND not satisfied
/// t.sample(EventVector::mask_of(&[3, 5, 9]), 1);
/// assert!(t.pop().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TriggerUnit {
    enabled: bool,
    mask: EventVector,
    condition: TriggerCond,
    fifo: Fifo<TriggerToken>,
    triggers: u64,
}

impl TriggerUnit {
    /// Creates a disabled-mask (never triggering) unit with the given FIFO
    /// depth. Depth 0 models the unbuffered ablation.
    pub fn new(fifo_depth: usize) -> Self {
        TriggerUnit {
            enabled: true,
            mask: EventVector::EMPTY,
            condition: TriggerCond::Any,
            fifo: Fifo::new(fifo_depth),
            triggers: 0,
        }
    }

    /// Enables or disables the unit.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the unit is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Selects which event lines participate.
    pub fn set_mask(&mut self, mask: EventVector) {
        self.mask = mask;
    }

    /// The configured mask.
    pub fn mask(&self) -> EventVector {
        self.mask
    }

    /// Sets the trigger condition.
    pub fn set_condition(&mut self, condition: TriggerCond) {
        self.condition = condition;
    }

    /// The configured condition.
    pub fn condition(&self) -> TriggerCond {
        self.condition
    }

    /// Evaluates the condition against `events` without touching the
    /// FIFO.
    pub fn matches(&self, events: EventVector) -> bool {
        if !self.enabled || self.mask.is_empty() {
            return false;
        }
        let hit = events & self.mask;
        match self.condition {
            TriggerCond::Any => !hit.is_empty(),
            TriggerCond::All => hit == self.mask,
            TriggerCond::AtLeast(k) => hit.count() >= u32::from(k),
        }
    }

    /// Samples one cycle of event lines; pushes a token when the
    /// condition fires. Returns whether a trigger was produced (even if it
    /// was then dropped by a full FIFO).
    pub fn sample(&mut self, events: EventVector, cycle: u64) -> bool {
        self.sample_with_flow(events, cycle, 0)
    }

    /// [`TriggerUnit::sample`] with a causal flow id to carry on the
    /// token (`0` = none).
    pub fn sample_with_flow(&mut self, events: EventVector, cycle: u64, flow: u64) -> bool {
        if !self.matches(events) {
            return false;
        }
        self.triggers += 1;
        let _ = self.fifo.push(TriggerToken {
            events: events & self.mask,
            cycle,
            flow,
        });
        true
    }

    /// Pops the oldest pending trigger.
    pub fn pop(&mut self) -> Option<TriggerToken> {
        self.fifo.pop()
    }

    /// Pending triggers.
    pub fn pending(&self) -> usize {
        self.fifo.len()
    }

    /// Triggers produced since construction (including dropped ones).
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// Triggers lost to a full FIFO — the quantity the FIFO-depth
    /// ablation reports.
    pub fn drops(&self) -> u64 {
        self.fifo.drops()
    }

    /// High-water mark of FIFO occupancy.
    pub fn max_occupancy(&self) -> usize {
        self.fifo.max_occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_condition_fires_on_single_line() {
        let mut t = TriggerUnit::new(2);
        t.set_mask(EventVector::mask_of(&[1, 2]));
        assert!(t.sample(EventVector::mask_of(&[2]), 0));
        assert!(!t.sample(EventVector::mask_of(&[3]), 1));
        assert_eq!(t.pending(), 1);
        let tok = t.pop().unwrap();
        assert_eq!(tok.events, EventVector::mask_of(&[2]));
        assert_eq!(tok.cycle, 0);
    }

    #[test]
    fn all_condition_requires_every_line() {
        let mut t = TriggerUnit::new(2);
        t.set_mask(EventVector::mask_of(&[1, 2]));
        t.set_condition(TriggerCond::All);
        assert!(!t.sample(EventVector::mask_of(&[1]), 0));
        assert!(t.sample(EventVector::mask_of(&[1, 2]), 1));
    }

    #[test]
    fn at_least_k_counts_lines() {
        let mut t = TriggerUnit::new(2);
        t.set_mask(EventVector::mask_of(&[0, 1, 2, 3]));
        t.set_condition(TriggerCond::AtLeast(3));
        assert!(!t.sample(EventVector::mask_of(&[0, 1]), 0));
        assert!(t.sample(EventVector::mask_of(&[0, 1, 3]), 1));
    }

    #[test]
    fn empty_mask_never_fires() {
        let mut t = TriggerUnit::new(2);
        t.set_condition(TriggerCond::All); // vacuous truth guard
        assert!(!t.sample(EventVector::mask_of(&[0]), 0));
        assert!(!t.matches(EventVector::EMPTY));
    }

    #[test]
    fn disabled_unit_never_fires() {
        let mut t = TriggerUnit::new(2);
        t.set_mask(EventVector::mask_of(&[0]));
        t.set_enabled(false);
        assert!(!t.sample(EventVector::mask_of(&[0]), 0));
        t.set_enabled(true);
        assert!(t.sample(EventVector::mask_of(&[0]), 1));
    }

    #[test]
    fn full_fifo_drops_but_counts() {
        let mut t = TriggerUnit::new(1);
        t.set_mask(EventVector::mask_of(&[0]));
        let ev = EventVector::mask_of(&[0]);
        assert!(t.sample(ev, 0));
        assert!(t.sample(ev, 1)); // dropped
        assert_eq!(t.pending(), 1);
        assert_eq!(t.triggers(), 2);
        assert_eq!(t.drops(), 1);
    }

    #[test]
    fn zero_depth_fifo_drops_everything() {
        let mut t = TriggerUnit::new(0);
        t.set_mask(EventVector::mask_of(&[0]));
        assert!(t.sample(EventVector::mask_of(&[0]), 0));
        assert_eq!(t.pending(), 0);
        assert_eq!(t.drops(), 1);
    }

    #[test]
    fn condition_display() {
        assert_eq!(TriggerCond::Any.to_string(), "any");
        assert_eq!(TriggerCond::All.to_string(), "all");
        assert_eq!(TriggerCond::AtLeast(3).to_string(), "at-least-3");
    }
}
