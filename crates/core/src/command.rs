//! The PELS command set (paper Section III-2).

use std::fmt;

/// The 4-bit opcodes of the command encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0x0,
    /// Write a known value to a peripheral register.
    Write = 0x1,
    /// Read-modify-write: OR a mask into a register.
    Set = 0x2,
    /// Read-modify-write: clear the mask bits of a register.
    Clear = 0x3,
    /// Read-modify-write: XOR a mask into a register.
    Toggle = 0x4,
    /// Masked read into the link's datapath register.
    Capture = 0x5,
    /// Conditional jump comparing the datapath register to an operand.
    JumpIf = 0x6,
    /// Non-nestable hardware loop.
    Loop = 0x7,
    /// Stall for a cycle count (watchdog-style waits).
    Wait = 0x8,
    /// Instant action: drive outgoing single-wire event lines.
    Action = 0x9,
    /// Stop; the link returns to idle.
    Halt = 0xF,
}

impl Opcode {
    /// Decodes a 4-bit opcode value.
    pub fn from_bits(bits: u8) -> Option<Opcode> {
        Some(match bits {
            0x0 => Opcode::Nop,
            0x1 => Opcode::Write,
            0x2 => Opcode::Set,
            0x3 => Opcode::Clear,
            0x4 => Opcode::Toggle,
            0x5 => Opcode::Capture,
            0x6 => Opcode::JumpIf,
            0x7 => Opcode::Loop,
            0x8 => Opcode::Wait,
            0x9 => Opcode::Action,
            0xF => Opcode::Halt,
            _ => return None,
        })
    }
}

/// Comparison condition of [`Command::JumpIf`], encoded in field bits
/// \[11:9\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Datapath register equals the operand.
    Eq = 0,
    /// Datapath register differs from the operand.
    Ne = 1,
    /// Unsigned less-than.
    LtU = 2,
    /// Unsigned greater-or-equal (the threshold compare of Figure 3).
    GeU = 3,
    /// Signed less-than.
    LtS = 4,
    /// Signed greater-or-equal.
    GeS = 5,
}

impl Cond {
    /// Decodes a 3-bit condition value.
    pub fn from_bits(bits: u8) -> Option<Cond> {
        Some(match bits {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::LtU,
            3 => Cond::GeU,
            4 => Cond::LtS,
            5 => Cond::GeS,
            _ => return None,
        })
    }

    /// Evaluates the condition for datapath value `dpr` against
    /// `operand`.
    pub fn eval(self, dpr: u32, operand: u32) -> bool {
        match self {
            Cond::Eq => dpr == operand,
            Cond::Ne => dpr != operand,
            Cond::LtU => dpr < operand,
            Cond::GeU => dpr >= operand,
            Cond::LtS => (dpr as i32) < (operand as i32),
            Cond::GeS => (dpr as i32) >= (operand as i32),
        }
    }
}

/// How [`Command::Action`] drives the selected outgoing event lines,
/// encoded in field bits \[11:10\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ActionMode {
    /// One-cycle pulse (the classic peripheral event).
    Pulse = 0,
    /// Latch the lines high.
    Set = 1,
    /// Latch the lines low.
    Clear = 2,
    /// Invert the latched lines.
    Toggle = 3,
}

impl ActionMode {
    /// Decodes a 2-bit mode value.
    pub fn from_bits(bits: u8) -> ActionMode {
        match bits & 0b11 {
            0 => ActionMode::Pulse,
            1 => ActionMode::Set,
            2 => ActionMode::Clear,
            _ => ActionMode::Toggle,
        }
    }
}

/// A decoded PELS command.
///
/// Register-addressing commands carry a **word offset** relative to the
/// link's base address (paper Section III-2: "PELS only requires a
/// word-addressed offset relative to a base address specific to each
/// link"), 12 bits wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Do nothing for one cycle.
    Nop,
    /// Write `value` to the register at `base + 4*offset`.
    Write {
        /// Word offset from the link base.
        offset: u16,
        /// Value written.
        value: u32,
    },
    /// OR `mask` into the register at `base + 4*offset` (read-modify-write).
    Set {
        /// Word offset from the link base.
        offset: u16,
        /// Bits to set.
        mask: u32,
    },
    /// Clear the `mask` bits of the register (read-modify-write).
    Clear {
        /// Word offset from the link base.
        offset: u16,
        /// Bits to clear.
        mask: u32,
    },
    /// XOR `mask` into the register (read-modify-write).
    Toggle {
        /// Word offset from the link base.
        offset: u16,
        /// Bits to toggle.
        mask: u32,
    },
    /// Masked read of the register into the datapath register.
    Capture {
        /// Word offset from the link base.
        offset: u16,
        /// AND-mask applied to the read data.
        mask: u32,
    },
    /// If `cond(dpr, operand)`, continue at SCM line `target`.
    JumpIf {
        /// Comparison condition.
        cond: Cond,
        /// Target SCM line.
        target: u16,
        /// Comparison operand.
        operand: u32,
    },
    /// Jump to `target` `count` times (the loop counter arms on first
    /// encounter; non-nestable — one counter per link).
    Loop {
        /// Target SCM line.
        target: u16,
        /// Iterations (jumps taken).
        count: u32,
    },
    /// Stall for `cycles` clock cycles.
    Wait {
        /// Cycles to wait.
        cycles: u32,
    },
    /// Drive the outgoing event lines of `group` selected by `mask`.
    Action {
        /// Drive mode.
        mode: ActionMode,
        /// Line group (group `g` covers lines `32*g .. 32*g+31`).
        group: u8,
        /// Per-line selection mask within the group.
        mask: u32,
    },
    /// Stop execution; the link returns to idle.
    Halt,
}

impl Command {
    /// The command's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Command::Nop => Opcode::Nop,
            Command::Write { .. } => Opcode::Write,
            Command::Set { .. } => Opcode::Set,
            Command::Clear { .. } => Opcode::Clear,
            Command::Toggle { .. } => Opcode::Toggle,
            Command::Capture { .. } => Opcode::Capture,
            Command::JumpIf { .. } => Opcode::JumpIf,
            Command::Loop { .. } => Opcode::Loop,
            Command::Wait { .. } => Opcode::Wait,
            Command::Action { .. } => Opcode::Action,
            Command::Halt => Opcode::Halt,
        }
    }

    /// Whether the command needs the system interconnect (a *sequenced*
    /// command in the paper's terms).
    pub fn is_sequenced(&self) -> bool {
        matches!(
            self,
            Command::Write { .. }
                | Command::Set { .. }
                | Command::Clear { .. }
                | Command::Toggle { .. }
                | Command::Capture { .. }
        )
    }

    /// Whether the command is a read-modify-write (7-cycle) form.
    pub fn is_rmw(&self) -> bool {
        matches!(
            self,
            Command::Set { .. } | Command::Clear { .. } | Command::Toggle { .. }
        )
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Nop => f.write_str("nop"),
            Command::Write { offset, value } => write!(f, "write {offset}, {value:#x}"),
            Command::Set { offset, mask } => write!(f, "set {offset}, {mask:#x}"),
            Command::Clear { offset, mask } => write!(f, "clear {offset}, {mask:#x}"),
            Command::Toggle { offset, mask } => write!(f, "toggle {offset}, {mask:#x}"),
            Command::Capture { offset, mask } => write!(f, "capture {offset}, {mask:#x}"),
            Command::JumpIf {
                cond,
                target,
                operand,
            } => write!(f, "jump-if {cond:?}, {target}, {operand:#x}"),
            Command::Loop { target, count } => write!(f, "loop {target}, {count}"),
            Command::Wait { cycles } => write!(f, "wait {cycles}"),
            Command::Action { mode, group, mask } => {
                write!(f, "action {mode:?}, {group}, {mask:#x}")
            }
            Command::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for bits in 0..16u8 {
            if let Some(op) = Opcode::from_bits(bits) {
                assert_eq!(op as u8, bits);
            }
        }
        assert_eq!(Opcode::from_bits(0xA), None);
        assert_eq!(Opcode::from_bits(0xF), Some(Opcode::Halt));
    }

    #[test]
    fn cond_eval_semantics() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::LtU.eval(1, 2));
        assert!(Cond::GeU.eval(2, 2));
        // Signed vs unsigned disagree on 0xFFFF_FFFF.
        assert!(Cond::GeU.eval(0xFFFF_FFFF, 1));
        assert!(Cond::LtS.eval(0xFFFF_FFFF, 1));
    }

    #[test]
    fn cond_from_bits_rejects_invalid() {
        assert_eq!(Cond::from_bits(6), None);
        assert_eq!(Cond::from_bits(3), Some(Cond::GeU));
    }

    #[test]
    fn sequenced_classification() {
        assert!(Command::Set { offset: 0, mask: 1 }.is_sequenced());
        assert!(Command::Set { offset: 0, mask: 1 }.is_rmw());
        assert!(Command::Write { offset: 0, value: 1 }.is_sequenced());
        assert!(!Command::Write { offset: 0, value: 1 }.is_rmw());
        assert!(!Command::Action {
            mode: ActionMode::Pulse,
            group: 0,
            mask: 1
        }
        .is_sequenced());
        assert!(!Command::Wait { cycles: 5 }.is_sequenced());
    }

    #[test]
    fn display_all_commands() {
        let cmds = [
            Command::Nop,
            Command::Write { offset: 3, value: 0xFF },
            Command::Capture { offset: 6, mask: 0xFFF },
            Command::JumpIf {
                cond: Cond::GeU,
                target: 3,
                operand: 2000,
            },
            Command::Loop { target: 0, count: 4 },
            Command::Wait { cycles: 100 },
            Command::Action {
                mode: ActionMode::Pulse,
                group: 0,
                mask: 1,
            },
            Command::Halt,
        ];
        for c in cmds {
            assert!(!c.to_string().is_empty());
        }
    }
}
