//! `pelsasm` — the PELS microcode assembler as a command-line tool.
//!
//! Reads microcode source (a file, or stdin with `-`) and emits one
//! 48-bit hex word per SCM line, ready to paste into an SCM-window
//! loader or an RTL memory image:
//!
//! ```text
//! $ echo 'capture 6, 0xFFF
//!         jump-if geu, 3, 2000
//!         halt
//!         action pulse, 0, 0x100' | pelsasm -
//! 500000000FFF
//! 660300
//! F00000000000
//! 900000000100
//! ```
//!
//! With `-d`, disassembles each line back for review.

use pels_core::{assemble, encode_command};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: pelsasm [-d] <file.pels | ->");
    eprintln!("  -d    also print the disassembly next to each word");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut disasm = false;
    let mut path: Option<&str> = None;
    for a in &args {
        match a.as_str() {
            "-d" => disasm = true,
            "-h" | "--help" => return usage(),
            other => {
                if path.replace(other).is_some() {
                    return usage();
                }
            }
        }
    }
    let Some(path) = path else {
        return usage();
    };

    let source = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("pelsasm: reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pelsasm: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pelsasm: {e}");
            return ExitCode::FAILURE;
        }
    };
    for cmd in program.commands() {
        let raw = encode_command(cmd).expect("validated program encodes");
        if disasm {
            println!("{raw:012X}  ; {cmd}");
        } else {
            println!("{raw:012X}");
        }
    }
    ExitCode::SUCCESS
}
