//! # pels-core — the Peripheral Event Linking System
//!
//! This crate is the paper's primary contribution (Ottaviano et al., DATE
//! 2024): a lightweight, microcode-programmable event-linking unit that
//! lets peripherals interact **without waking the main core**, combining
//!
//! * **instant actions** — single-wire event lines driven in a fixed 2
//!   cycles from the triggering event, like the channel-based interconnects
//!   of Silicon Labs PRS / Nordic PPI (paper Table I), and
//! * **sequenced actions** — arbitrary read-modify-write commands issued
//!   over the system interconnect (7 cycles for an RMW), which no channel
//!   interconnect can express,
//!
//! under one microcode model executed from a tiny private SCM, so no fetch
//! ever touches the power-hungry shared SRAM.
//!
//! ## Architecture (paper Figure 2)
//!
//! A [`Pels`] instance contains `N` independent [`link::Link`]s. Each link
//! owns:
//!
//! * a [`trigger::TriggerUnit`] — event mask + trigger condition
//!   (any/all/at-least-k of the selected lines) + a trigger FIFO so pulses
//!   arriving while the link is busy are not lost;
//! * a private [`scm::Scm`] instruction memory (4–8 commands in the
//!   paper's sweep) holding [`Command`]s in the 48-bit encoding of
//!   Section III-2 (4-bit opcode, 12-bit field, 32-bit operand);
//! * an [`exec::ExecutionUnit`] — the FSM that fetches one command per
//!   cycle and performs instant actions or stalls through bus
//!   transactions.
//!
//! Links can trigger each other through action-line **loopback**
//! (Figure 2 ⑨), enabling link specialization.
//!
//! ## Example
//!
//! ```
//! use pels_core::{Command, Cond, ActionMode, Program};
//!
//! // The threshold check of the paper's Figure 3, instant-action flavour:
//! // capture the sensor sample, compare, pulse an event line.
//! let program = Program::new(vec![
//!     Command::Capture { offset: 6, mask: 0xFFF },
//!     Command::JumpIf { cond: Cond::GeU, target: 3, operand: 2000 },
//!     Command::Halt,
//!     Command::Action { mode: ActionMode::Pulse, group: 0, mask: 1 << 8 },
//! ])?;
//! assert_eq!(program.len(), 4);
//! # Ok::<(), pels_core::ProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod command;
pub mod config;
pub mod encoding;
pub mod exec;
pub mod link;
pub mod pels;
pub mod program;
pub mod scm;
pub mod trigger;

pub use asm::{assemble, AsmError};
pub use command::{ActionMode, Command, Cond, Opcode};
pub use config::regs;
pub use encoding::{decode_command, encode_command, EncodingError};
pub use exec::{ExecutionUnit, LinkBus};
pub use pels::{Pels, PelsBuilder, PelsConfig};
pub use program::{Program, ProgramError};
pub use scm::Scm;
pub use trigger::{TriggerCond, TriggerUnit};
