//! The 48-bit command encoding (paper Section III-2).
//!
//! Every SCM line holds one command:
//!
//! ```text
//!  47    44 43        32 31                0
//! ┌────────┬────────────┬──────────────────┐
//! │ opcode │   field    │     operand      │
//! │ 4 bits │  12 bits   │     32 bits      │
//! └────────┴────────────┴──────────────────┘
//! ```
//!
//! The paper motivates the width: a single-cycle read-modify-write needs
//! an address *and* a mask, which does not fit 32 bits; restricting the
//! address to a word offset from a per-link base keeps the field at 12
//! bits (within the paper's 10–14-bit range).
//!
//! Field sub-encodings:
//!
//! | command    | field\[11:10\] | field\[9:0\]          |
//! |------------|---------------|------------------------|
//! | write/set/clear/toggle/capture | word offset (all 12 bits) | |
//! | jump-if    | cond\[2:0\] in \[11:9\] | target\[8:0\] |
//! | loop       | —             | target\[8:0\]          |
//! | action     | mode          | line group             |

use crate::command::{ActionMode, Command, Cond, Opcode};
use std::error::Error;
use std::fmt;

/// Maximum word offset expressible in the 12-bit field.
pub const MAX_OFFSET: u16 = 0xFFF;
/// Maximum jump/loop target expressible in the 9-bit sub-field.
pub const MAX_TARGET: u16 = 0x1FF;
/// Maximum action-line group.
pub const MAX_GROUP: u8 = 1; // 64 event lines = 2 groups of 32

/// Encoding/decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodingError {
    /// A word offset exceeds the 12-bit field.
    OffsetTooLarge {
        /// The offending offset.
        offset: u16,
    },
    /// A jump/loop target exceeds the 9-bit sub-field.
    TargetTooLarge {
        /// The offending target.
        target: u16,
    },
    /// An action group beyond the implemented event lines.
    GroupTooLarge {
        /// The offending group.
        group: u8,
    },
    /// A raw word whose opcode nibble is unassigned.
    BadOpcode {
        /// The opcode bits.
        bits: u8,
    },
    /// A `jump-if` word with an unassigned condition code.
    BadCond {
        /// The condition bits.
        bits: u8,
    },
    /// Raw word uses bits above 47.
    WidthExceeded {
        /// The raw word.
        raw: u64,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::OffsetTooLarge { offset } => {
                write!(f, "word offset {offset} exceeds the 12-bit field")
            }
            EncodingError::TargetTooLarge { target } => {
                write!(f, "jump target {target} exceeds the 9-bit sub-field")
            }
            EncodingError::GroupTooLarge { group } => {
                write!(f, "action group {group} beyond the implemented event lines")
            }
            EncodingError::BadOpcode { bits } => write!(f, "unassigned opcode {bits:#x}"),
            EncodingError::BadCond { bits } => write!(f, "unassigned condition {bits:#x}"),
            EncodingError::WidthExceeded { raw } => {
                write!(f, "raw word {raw:#x} wider than 48 bits")
            }
        }
    }
}

impl Error for EncodingError {}

fn pack(op: Opcode, field: u16, data: u32) -> u64 {
    debug_assert!(field <= 0xFFF);
    (u64::from(op as u8) << 44) | (u64::from(field) << 32) | u64::from(data)
}

fn check_offset(offset: u16) -> Result<u16, EncodingError> {
    if offset > MAX_OFFSET {
        Err(EncodingError::OffsetTooLarge { offset })
    } else {
        Ok(offset)
    }
}

fn check_target(target: u16) -> Result<u16, EncodingError> {
    if target > MAX_TARGET {
        Err(EncodingError::TargetTooLarge { target })
    } else {
        Ok(target)
    }
}

/// Encodes a command into its 48-bit raw word.
///
/// # Errors
///
/// Returns an [`EncodingError`] when a field exceeds its sub-encoding
/// range.
///
/// ```
/// use pels_core::{encode_command, decode_command, Command};
/// let cmd = Command::Set { offset: 0x3, mask: 0x0000_0010 };
/// let raw = encode_command(&cmd)?;
/// assert_eq!(decode_command(raw)?, cmd);
/// # Ok::<(), pels_core::EncodingError>(())
/// ```
pub fn encode_command(cmd: &Command) -> Result<u64, EncodingError> {
    Ok(match *cmd {
        Command::Nop => pack(Opcode::Nop, 0, 0),
        Command::Write { offset, value } => pack(Opcode::Write, check_offset(offset)?, value),
        Command::Set { offset, mask } => pack(Opcode::Set, check_offset(offset)?, mask),
        Command::Clear { offset, mask } => pack(Opcode::Clear, check_offset(offset)?, mask),
        Command::Toggle { offset, mask } => pack(Opcode::Toggle, check_offset(offset)?, mask),
        Command::Capture { offset, mask } => {
            pack(Opcode::Capture, check_offset(offset)?, mask)
        }
        Command::JumpIf {
            cond,
            target,
            operand,
        } => pack(
            Opcode::JumpIf,
            (u16::from(cond as u8) << 9) | check_target(target)?,
            operand,
        ),
        Command::Loop { target, count } => pack(Opcode::Loop, check_target(target)?, count),
        Command::Wait { cycles } => pack(Opcode::Wait, 0, cycles),
        Command::Action { mode, group, mask } => {
            if group > MAX_GROUP {
                return Err(EncodingError::GroupTooLarge { group });
            }
            pack(
                Opcode::Action,
                (u16::from(mode as u8) << 10) | u16::from(group),
                mask,
            )
        }
        Command::Halt => pack(Opcode::Halt, 0, 0),
    })
}

/// Decodes a 48-bit raw word back into a command.
///
/// # Errors
///
/// Returns an [`EncodingError`] for unassigned opcodes/conditions or words
/// wider than 48 bits.
pub fn decode_command(raw: u64) -> Result<Command, EncodingError> {
    if raw >> 48 != 0 {
        return Err(EncodingError::WidthExceeded { raw });
    }
    let op_bits = ((raw >> 44) & 0xF) as u8;
    let field = ((raw >> 32) & 0xFFF) as u16;
    let data = raw as u32;
    let op = Opcode::from_bits(op_bits).ok_or(EncodingError::BadOpcode { bits: op_bits })?;
    Ok(match op {
        Opcode::Nop => Command::Nop,
        Opcode::Write => Command::Write {
            offset: field,
            value: data,
        },
        Opcode::Set => Command::Set {
            offset: field,
            mask: data,
        },
        Opcode::Clear => Command::Clear {
            offset: field,
            mask: data,
        },
        Opcode::Toggle => Command::Toggle {
            offset: field,
            mask: data,
        },
        Opcode::Capture => Command::Capture {
            offset: field,
            mask: data,
        },
        Opcode::JumpIf => {
            let cond_bits = (field >> 9) as u8;
            let cond = Cond::from_bits(cond_bits)
                .ok_or(EncodingError::BadCond { bits: cond_bits })?;
            Command::JumpIf {
                cond,
                target: field & 0x1FF,
                operand: data,
            }
        }
        Opcode::Loop => Command::Loop {
            target: field & 0x1FF,
            count: data,
        },
        Opcode::Wait => Command::Wait { cycles: data },
        Opcode::Action => Command::Action {
            mode: ActionMode::from_bits((field >> 10) as u8),
            group: (field & 0x3FF) as u8,
            mask: data,
        },
        Opcode::Halt => Command::Halt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cmd: Command) {
        let raw = encode_command(&cmd).unwrap();
        assert!(raw >> 48 == 0, "{cmd} encodes within 48 bits");
        assert_eq!(decode_command(raw).unwrap(), cmd, "roundtrip of {cmd}");
    }

    #[test]
    fn all_commands_roundtrip() {
        roundtrip(Command::Nop);
        roundtrip(Command::Write { offset: 0xFFF, value: u32::MAX });
        roundtrip(Command::Set { offset: 0, mask: 1 });
        roundtrip(Command::Clear { offset: 7, mask: 0xF0 });
        roundtrip(Command::Toggle { offset: 42, mask: 0xAAAA });
        roundtrip(Command::Capture { offset: 6, mask: 0xFFF });
        for cond in [Cond::Eq, Cond::Ne, Cond::LtU, Cond::GeU, Cond::LtS, Cond::GeS] {
            roundtrip(Command::JumpIf { cond, target: 0x1FF, operand: 0xDEAD });
        }
        roundtrip(Command::Loop { target: 3, count: 1000 });
        roundtrip(Command::Wait { cycles: u32::MAX });
        for mode in [
            ActionMode::Pulse,
            ActionMode::Set,
            ActionMode::Clear,
            ActionMode::Toggle,
        ] {
            roundtrip(Command::Action { mode, group: 1, mask: 0x8000_0001 });
        }
        roundtrip(Command::Halt);
    }

    #[test]
    fn field_layout_matches_paper() {
        // 4-bit opcode at [47:44], 12-bit field at [43:32], 32-bit data.
        let raw = encode_command(&Command::Write { offset: 0xABC, value: 0x1234_5678 }).unwrap();
        assert_eq!(raw >> 44, Opcode::Write as u64);
        assert_eq!((raw >> 32) & 0xFFF, 0xABC);
        assert_eq!(raw as u32, 0x1234_5678);
    }

    #[test]
    fn out_of_range_fields_rejected() {
        assert_eq!(
            encode_command(&Command::Write { offset: 0x1000, value: 0 }),
            Err(EncodingError::OffsetTooLarge { offset: 0x1000 })
        );
        assert_eq!(
            encode_command(&Command::Loop { target: 0x200, count: 1 }),
            Err(EncodingError::TargetTooLarge { target: 0x200 })
        );
        assert_eq!(
            encode_command(&Command::Action {
                mode: ActionMode::Pulse,
                group: 2,
                mask: 0
            }),
            Err(EncodingError::GroupTooLarge { group: 2 })
        );
    }

    #[test]
    fn bad_raw_words_rejected() {
        assert!(matches!(
            decode_command(0xA << 44),
            Err(EncodingError::BadOpcode { bits: 0xA })
        ));
        // jump-if with cond bits 7 (unassigned).
        let raw = (0x6u64 << 44) | (0x7u64 << (32 + 9));
        assert!(matches!(decode_command(raw), Err(EncodingError::BadCond { bits: 7 })));
        assert!(matches!(
            decode_command(1u64 << 48),
            Err(EncodingError::WidthExceeded { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = EncodingError::OffsetTooLarge { offset: 0x1000 };
        assert!(e.to_string().contains("12-bit"));
    }
}
