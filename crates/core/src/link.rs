//! One independent linking unit.
//!
//! "To provide parallelism when servicing multiple peripheral linking
//! events, PELS is internally organized into independent linking units,
//! referred to as links" (paper Section III-1). A [`Link`] bundles the
//! trigger unit, the private SCM and the execution unit, and carries the
//! per-link configuration the main CPU programs: event mask, trigger
//! condition, sequenced-action base address and the microcode itself.

use crate::exec::{ExecCtx, ExecutionUnit, LinkBus, ActionLines};
use crate::program::Program;
use crate::scm::{Scm, ScmCapacityError};
use crate::trigger::{TriggerCond, TriggerUnit};
use pels_sim::{ActivityKind, ActivitySet, ComponentId, EventVector, SimTime, Trace};

/// Default trigger-FIFO depth (matches a small RTL FIFO).
pub const DEFAULT_FIFO_DEPTH: usize = 4;

/// A single link: trigger unit + SCM + execution unit.
#[derive(Debug)]
pub struct Link {
    id: ComponentId,
    trigger: TriggerUnit,
    scm: Scm,
    exec: ExecutionUnit,
    /// Snapshot of exec stats at the last activity drain.
    reported: crate::exec::ExecStats,
}

impl Link {
    /// Creates link `index` with an SCM of `scm_lines` commands and the
    /// default FIFO depth.
    pub fn new(index: usize, scm_lines: usize) -> Self {
        Self::with_fifo_depth(index, scm_lines, DEFAULT_FIFO_DEPTH)
    }

    /// Creates a link with an explicit trigger-FIFO depth (the FIFO
    /// ablation uses depth 0).
    pub fn with_fifo_depth(index: usize, scm_lines: usize, fifo_depth: usize) -> Self {
        Link {
            id: ComponentId::intern(&format!("pels.link{index}")),
            trigger: TriggerUnit::new(fifo_depth),
            scm: Scm::new(scm_lines),
            exec: ExecutionUnit::new(),
            reported: crate::exec::ExecStats::default(),
        }
    }

    /// The link's hierarchical name (`pels.linkN`).
    pub fn name(&self) -> &'static str {
        self.id.name()
    }

    /// The link's interned component id.
    pub fn component(&self) -> ComponentId {
        self.id
    }

    /// The trigger unit (mask / condition configuration).
    pub fn trigger(&self) -> &TriggerUnit {
        &self.trigger
    }

    /// Mutable trigger unit.
    pub fn trigger_mut(&mut self) -> &mut TriggerUnit {
        &mut self.trigger
    }

    /// The execution unit (status inspection).
    pub fn exec(&self) -> &ExecutionUnit {
        &self.exec
    }

    /// The instruction memory.
    pub fn scm(&self) -> &Scm {
        &self.scm
    }

    /// Mutable instruction memory (memory-mapped SCM window path).
    pub fn scm_mut(&mut self) -> &mut Scm {
        &mut self.scm
    }

    /// Loads a microcode program.
    ///
    /// # Errors
    ///
    /// Returns [`ScmCapacityError`] if the program exceeds the SCM.
    pub fn load_program(&mut self, program: &Program) -> Result<(), ScmCapacityError> {
        self.scm.load(program)
    }

    /// Configures the event mask (which input lines this link listens
    /// to).
    pub fn set_mask(&mut self, mask: EventVector) -> &mut Self {
        self.trigger.set_mask(mask);
        self
    }

    /// Configures the trigger condition.
    pub fn set_condition(&mut self, cond: TriggerCond) -> &mut Self {
        self.trigger.set_condition(cond);
        self
    }

    /// Configures the base address of sequenced-action offsets.
    pub fn set_base(&mut self, base: u32) -> &mut Self {
        self.exec.set_base(base);
        self
    }

    /// Configures the per-fetch stall (SCM-vs-shared-SRAM ablation; 0 =
    /// the paper's private-SCM design).
    pub fn set_fetch_stall(&mut self, cycles: u32) -> &mut Self {
        self.exec.set_fetch_stall(cycles);
        self
    }

    /// Enables or disables the link.
    pub fn set_enabled(&mut self, enabled: bool) -> &mut Self {
        self.trigger.set_enabled(enabled);
        self
    }

    /// Whether the execution unit is busy.
    pub fn is_busy(&self) -> bool {
        self.exec.is_busy()
    }

    /// Whether a tick with no incoming events would be a complete no-op
    /// for this link: nothing executing, nothing buffered, and the
    /// trigger condition cannot fire on an empty event image (a
    /// degenerate `AtLeast(0)` condition can).
    pub fn is_quiescent(&self) -> bool {
        !self.exec.is_busy()
            && self.trigger.pending() == 0
            && !self.trigger.matches(EventVector::EMPTY)
    }

    /// Samples the broadcast events (trigger stage) — call once per cycle
    /// *before* [`Link::step_exec`].
    pub fn sample_events(&mut self, events: EventVector, cycle: u64) -> bool {
        self.trigger.sample(events, cycle)
    }

    /// [`Link::sample_events`], additionally looking up the causal flow
    /// carried by the masked event wires so it rides the trigger token.
    /// One branch (inside `flow_on_lines`) when flows are off.
    pub fn sample_events_traced(&mut self, events: EventVector, cycle: u64, trace: &Trace) -> bool {
        let flow = trace.flow_on_lines((events & self.trigger.mask()).bits());
        self.trigger.sample_with_flow(events, cycle, flow)
    }

    /// Advances the execution unit by one cycle.
    pub fn step_exec(
        &mut self,
        cycle: u64,
        time: SimTime,
        bus: &mut dyn LinkBus,
        actions: &mut ActionLines,
        trace: &mut Trace,
    ) {
        let mut ctx = ExecCtx {
            cycle,
            time,
            bus,
            actions,
            trace,
            id: self.id,
        };
        self.exec.step(&mut self.scm, &mut self.trigger, &mut ctx);
    }

    /// Drains SCM accesses, busy cycles and command counts into `into`.
    ///
    /// Execution statistics accumulate for the link's lifetime; this
    /// reports the delta since the previous drain so repeated measurement
    /// windows compose.
    pub fn drain_activity(&mut self, into: &mut ActivitySet) {
        let (reads, writes) = self.scm.take_access_counts();
        into.record(self.id, ActivityKind::ScmRead, reads);
        into.record(self.id, ActivityKind::ScmWrite, writes);
        let stats = self.exec.stats();
        into.record(
            self.id,
            ActivityKind::ActiveCycle,
            stats.busy_cycles - self.reported.busy_cycles,
        );
        into.record(
            self.id,
            ActivityKind::InstrRetired,
            stats.commands - self.reported.commands,
        );
        self.reported = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ActionMode, Command};

    #[test]
    fn construction_and_config() {
        let mut link = Link::new(3, 8);
        assert_eq!(link.name(), "pels.link3");
        link.set_mask(EventVector::mask_of(&[5]))
            .set_condition(TriggerCond::All)
            .set_base(0x1A10_0000)
            .set_enabled(true);
        assert_eq!(link.trigger().mask(), EventVector::mask_of(&[5]));
        assert_eq!(link.trigger().condition(), TriggerCond::All);
        assert_eq!(link.exec().base(), 0x1A10_0000);
        assert!(!link.is_busy());
    }

    #[test]
    fn program_load_respects_capacity() {
        let mut link = Link::new(0, 2);
        let long = Program::new(vec![
            Command::Nop,
            Command::Nop,
            Command::Halt,
        ])
        .unwrap();
        assert!(link.load_program(&long).is_err());
        let short = Program::new(vec![Command::Action {
            mode: ActionMode::Pulse,
            group: 0,
            mask: 1,
        }])
        .unwrap();
        assert!(link.load_program(&short).is_ok());
    }

    #[test]
    fn sample_pushes_trigger() {
        let mut link = Link::new(0, 4);
        link.set_mask(EventVector::mask_of(&[2]));
        assert!(link.sample_events(EventVector::mask_of(&[2]), 7));
        assert_eq!(link.trigger().pending(), 1);
        assert!(!link.sample_events(EventVector::mask_of(&[3]), 8));
    }
}
