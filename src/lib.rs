//! # pels-repro — umbrella crate for the PELS reproduction
//!
//! Re-exports the workspace crates so the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` can use
//! one coherent namespace. See the individual crates for the substance:
//!
//! * [`pels_core`] — the paper's contribution (the event-linking system);
//! * [`pels_soc`] — the PULPissimo-like SoC it is evaluated in;
//! * [`pels_desc`] — validated, JSON-serializable system/scenario
//!   descriptions (the canonical construction API);
//! * [`pels_cpu`] — the Ibex-class RV32IMC baseline;
//! * [`pels_obs`], [`pels_fleet`] — observability (metrics, flow
//!   attribution, trace export) and the parallel sweep engine;
//! * [`pels_periph`], [`pels_interconnect`], [`pels_sim`], [`pels_power`] —
//!   substrates.

#![forbid(unsafe_code)]

pub use pels_core as core;
pub use pels_cpu as cpu;
pub use pels_desc as desc;
pub use pels_fleet as fleet;
pub use pels_interconnect as interconnect;
pub use pels_obs as obs;
pub use pels_periph as periph;
pub use pels_power as power;
pub use pels_sim as sim;
pub use pels_soc as soc;
